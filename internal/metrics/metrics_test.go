package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 32000 {
		t.Fatalf("counter = %d, want 32000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramMeanMinMax(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", got)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	h := NewHistogram(time.Millisecond, 1024*time.Millisecond)
	for i := 0; i < 99; i++ {
		h.Observe(2 * time.Millisecond)
	}
	h.Observe(900 * time.Millisecond)
	p50 := h.Quantile(0.5)
	if p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want <= 4ms (one-bucket slack)", p50)
	}
	p100 := h.Quantile(1.0)
	if p100 < 900*time.Millisecond {
		t.Fatalf("p100 = %v, want >= 900ms", p100)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(time.Millisecond, 4*time.Millisecond)
	h.Observe(time.Minute)
	if got := h.Quantile(1.0); got != time.Minute {
		t.Fatalf("overflow quantile = %v, want 1m", got)
	}
}

func TestRegistrySameNameSameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter(a) returned distinct instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(g) returned distinct instances")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram(h) returned distinct instances")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(5)
	before := r.Snapshot()
	r.Counter("reqs").Add(7)
	after := r.Snapshot()
	d := after.Diff(before)
	if d["reqs"] != 7 {
		t.Fatalf("diff reqs = %d, want 7", d["reqs"])
	}
}

func TestSnapshotIncludesHistogramSummary(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(time.Millisecond)
	s := r.Snapshot()
	if s["lat.count"] != 1 {
		t.Fatalf("lat.count = %d, want 1", s["lat.count"])
	}
	if s["lat.mean_ns"] != int64(time.Millisecond) {
		t.Fatalf("lat.mean_ns = %d, want %d", s["lat.mean_ns"], int64(time.Millisecond))
	}
}

func TestSnapshotStringSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	s := r.Snapshot().String()
	if s != "a=1\nb=1\n" {
		t.Fatalf("String() = %q", s)
	}
}
