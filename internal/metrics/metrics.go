// Package metrics provides the lightweight counters and latency histograms
// used to instrument every component of the dynamic proxy caching system.
//
// All types are safe for concurrent use and allocation-free on the hot path.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable 64-bit value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records durations into fixed exponential buckets so that
// experiments can report latency percentiles without retaining samples.
type Histogram struct {
	mu      sync.Mutex
	bounds  []time.Duration // upper bound of each bucket, ascending
	counts  []int64         // len(bounds)+1; last bucket is overflow
	total   int64
	sum     time.Duration
	minSeen time.Duration
	maxSeen time.Duration
}

// NewHistogram returns a histogram with exponentially spaced bucket
// boundaries from lo doubling up to hi (inclusive).
func NewHistogram(lo, hi time.Duration) *Histogram {
	if lo <= 0 {
		lo = time.Microsecond
	}
	var bounds []time.Duration
	for b := lo; b <= hi; b *= 2 {
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.minSeen {
		h.minSeen = d
	}
	if d > h.maxSeen {
		h.maxSeen = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the average observed duration, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest observation, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.minSeen
}

// Max returns the largest observation, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxSeen
}

// BucketSnapshot is a point-in-time copy of a histogram's buckets, used
// by the Prometheus exposition writer.
type BucketSnapshot struct {
	Bounds []time.Duration // upper bound of each bucket, ascending
	Counts []int64         // per-bucket counts; len(Bounds)+1, last is overflow
	Sum    time.Duration
	Total  int64
}

// Buckets returns a consistent copy of the histogram's bucket state.
func (h *Histogram) Buckets() BucketSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return BucketSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Total:  h.total,
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using the
// bucket boundaries; the answer is exact to within one bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.maxSeen
		}
	}
	return h.maxSeen
}

// Registry is a named collection of counters, gauges, and histograms.
// Components share one registry so that experiments can snapshot the whole
// system in one call.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	ggs   map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		ggs:   make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.ggs[name]
	if !ok {
		g = &Gauge{}
		r.ggs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating a default-range
// (1µs–16s) histogram on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(time.Microsecond, 16*time.Second)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of all scalar metric values.
type Snapshot map[string]int64

// Snapshot copies every counter and gauge value. Histograms are summarized
// as <name>.count and <name>.mean_ns entries.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.ctrs)+len(r.ggs)+2*len(r.hists))
	for name, c := range r.ctrs {
		s[name] = c.Value()
	}
	for name, g := range r.ggs {
		s[name] = g.Value()
	}
	for name, h := range r.hists {
		s[name+".count"] = h.Count()
		s[name+".mean_ns"] = int64(h.Mean())
	}
	return s
}

// Diff returns after-before for every key present in after.
func (after Snapshot) Diff(before Snapshot) Snapshot {
	d := make(Snapshot, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// String renders the snapshot sorted by key, one metric per line.
func (s Snapshot) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, s[k])
	}
	return out
}
