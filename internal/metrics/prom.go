package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ExpositionMetric names one registry metric for Prometheus text
// exposition. Type is "counter", "gauge", or "histogram" (matching the
// registry map the metric lives in); Help becomes the # HELP line.
type ExpositionMetric struct {
	Name string
	Type string
	Help string
}

// PromName converts a dotted internal metric name ("dpc.page.hits") to a
// valid Prometheus metric name ("dpc_page_hits"). Any character outside
// [a-zA-Z0-9_:] maps to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the listed metrics from the registry in
// Prometheus text exposition format (version 0.0.4). Counters and gauges
// emit a single sample; histograms emit cumulative le-labelled buckets
// (bounds expressed in seconds), a +Inf bucket, _sum (seconds), and
// _count. Metrics absent from the registry expose their zero value, so a
// catalog scrape is complete even before first use.
func WritePrometheus(w io.Writer, r *Registry, metrics []ExpositionMetric) error {
	for _, m := range metrics {
		name := PromName(m.Name)
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Type); err != nil {
			return err
		}
		var err error
		switch m.Type {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", name, r.Counter(m.Name).Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", name, r.Gauge(m.Name).Value())
		case "histogram":
			err = writePromHistogram(w, name, r.Histogram(m.Name).Buckets())
		default:
			err = fmt.Errorf("metrics: unknown exposition type %q for %s", m.Type, m.Name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, b BucketSnapshot) error {
	var cum int64
	for i, bound := range b.Bounds {
		cum += b.Counts[i]
		le := promFloat(bound.Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, b.Total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(b.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, b.Total)
	return err
}

// PromContentType is the Content-Type for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"
