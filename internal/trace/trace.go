// Package trace is the proxy's request-scoped tracing and decision-
// provenance layer: one root span per request, child spans per pipeline
// stage and per fragment reference resolved, each annotated with typed
// decision events (which cache tier answered, why a tier declined, which
// coalesce flight a request rode, what invalidated a fill). The framing
// follows determination provenance — record the decisions that determined
// an outcome, not just the outcome — so a single slow or stale response
// can be reconstructed after the fact from its trace alone.
//
// Cost model. A nil *Tracer is the off state: every method on a nil
// Tracer or nil *Span is a no-op, so an untraced request pays zero
// allocations and a handful of predicted branches (benchmarked by
// BenchmarkDisabledTracer / TestDisabledTracerZeroAlloc). When tracing is
// enabled, every request records a full span tree (tail sampling:
// slowness is only known at the end), and admission into the bounded
// ring is what is sampled — a deterministic 1-in-SampleEvery rate, plus
// every request at or over the slow threshold, plus every request whose
// upstream proxy propagated a trace id (X-DPC-Trace), so a cluster
// request yields one stitched tree across rings.
package trace

import (
	"context"
	"log"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// ctxKey keys the span carried by a request context.
type ctxKey struct{}

// NewContext threads a span through a context.Context; the pipeline
// attaches the root span to each request's context so any depth of the
// call tree (assembler, async reporters) can annotate the same trace.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil (safe to use
// directly — every Span method is nil-safe).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Header is the request header that propagates a trace id across proxy
// hops (edge → interior proxy → …). A request arriving with a valid id
// adopts it and is always admitted to the ring, so the hop's trace can be
// stitched to the caller's by id.
const Header = "X-DPC-Trace"

// ResponseHeader is stamped on responses to rate- or remote-sampled
// requests so a single curl can be correlated with its /_dpc/trace entry.
const ResponseHeader = "X-DPC-Trace-Id"

// Bounds on one span's recorded detail. Past them, further children or
// events are counted but not retained, so a pathological page (thousands
// of fragment refs) cannot balloon a single trace.
const (
	maxChildren = 512
	maxEvents   = 128
)

// Kind classifies a decision event.
type Kind string

// The decision-event vocabulary (documented in docs/OBSERVABILITY.md).
const (
	// KindHit: a cache tier answered the request (Tier names it).
	KindHit Kind = "hit"
	// KindMiss: a tier was consulted and declined; Note says why when the
	// reason is anything beyond plain absence.
	KindMiss Kind = "miss"
	// KindBypass: a tier was skipped without lookup (Note: the cause,
	// e.g. "identity" for an identity-bearing request at the page tier).
	KindBypass Kind = "bypass"
	// KindRole: the coalesce stage assigned a flight role; Note is
	// "leader", "follower", or "head-follower" and N the flight id.
	KindRole Kind = "role"
	// KindStaleBypass: assembly found stale fragment refs and the request
	// was recovered with a bypass fetch; Note carries the refs.
	KindStaleBypass Kind = "stale-bypass"
	// KindInvalidated: the invalidation fabric voided this request's
	// page-tier fill; Note is the cause ("fragment tombstone", "epoch
	// flush").
	KindInvalidated Kind = "invalidated"
	// KindFill: a cache tier stored this response (Tier names it, N the
	// body bytes).
	KindFill Kind = "fill"
	// KindShed: the admission stage refused to queue this request on the
	// origin (fast 503 + Retry-After); Note is the pressure signal that
	// tripped ("inflight", "queue", "per-key", "per-tenant", "negcache").
	KindShed Kind = "shed"
	// KindStaleServe: the admission stage answered from an expired cache
	// entry instead of queueing on the origin; Tier names the tier and N
	// is the staleness in milliseconds.
	KindStaleServe Kind = "stale-serve"
	// KindInfo: an annotation that is provenance but not a decision
	// (origin response shape, capture overflow, …).
	KindInfo Kind = "info"
	// KindError: the request failed; Note is the error.
	KindError Kind = "error"
)

// Event is one typed decision annotation on a span.
type Event struct {
	at   time.Duration // offset from the trace start
	kind Kind
	tier string
	note string
	n    int64
}

// Span is one timed node of a request's trace tree. The zero value is not
// usable; spans come from Tracer.StartRequest and Span.Child. All methods
// are safe on a nil receiver (the disabled path) and safe for concurrent
// use (an async goroutine may finish a child while the root is captured).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Duration // offset from the trace start
	dur      time.Duration // -1 until finished
	events   []Event
	children []*Span
	truncEv  int // events dropped past maxEvents
	truncCh  int // children dropped past maxChildren
	bytes    int64
	ttfb     time.Duration // -1 until first byte

	// Root-only fields.
	root    *rootState
	isRoot  bool
	tracer  *Tracer
	id      string
	remote  bool // id adopted from an upstream proxy's X-DPC-Trace
	sampled bool // rate- or remote-sampled: admitted regardless of speed
}

// rootState is shared by every span of one trace.
type rootState struct {
	began time.Time
}

// now returns the current offset from the trace start.
func (s *Span) now() time.Duration { return time.Since(s.root.began) }

// Child starts a sub-span. Nil-safe: a nil receiver returns nil, so the
// whole tree of calls below a disabled tracer stays allocation-free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, root: s.root, dur: -1, ttfb: -1, start: s.now()}
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
	} else {
		// Over the per-span bound: count the loss and record nothing more
		// below this span (the nil child absorbs the caller's calls).
		s.truncCh++
		c = nil
	}
	s.mu.Unlock()
	return c
}

// Event records one typed decision annotation.
func (s *Span) Event(kind Kind, tier, note string, n int64) {
	if s == nil {
		return
	}
	at := s.now()
	s.mu.Lock()
	if len(s.events) < maxEvents {
		s.events = append(s.events, Event{at: at, kind: kind, tier: tier, note: note, n: n})
	} else {
		s.truncEv++
	}
	s.mu.Unlock()
}

// AddBytes accumulates response bytes attributed to this span.
func (s *Span) AddBytes(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.bytes += n
	s.mu.Unlock()
}

// MarkFirstByte records the time to first byte once; later calls are
// no-ops.
func (s *Span) MarkFirstByte() {
	if s == nil {
		return
	}
	at := s.now()
	s.mu.Lock()
	if s.ttfb < 0 {
		s.ttfb = at
	}
	s.mu.Unlock()
}

// Finish closes the span. Finishing the root span files the trace with
// its tracer (ring admission, metrics, slow log); finishing twice is a
// no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	at := s.now()
	s.mu.Lock()
	if s.dur >= 0 {
		s.mu.Unlock()
		return
	}
	s.dur = at - s.start
	s.mu.Unlock()
	if s.isRoot {
		s.tracer.finish(s)
	}
}

// TraceID returns the trace's id ("" on a nil or non-root span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Sampled reports whether this trace was rate- or remote-sampled — known
// at request start, so callers can stamp response headers and propagate
// the id downstream. (A slow-only capture is decided at Finish and is not
// reported here.)
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// Config parameterizes a Tracer.
type Config struct {
	// SampleEvery admits 1 in N finished traces to the ring by rate
	// (deterministic: requests 1, N+1, 2N+1, … are sampled). 0 selects
	// 64; 1 samples everything.
	SampleEvery int
	// SlowThreshold admits every trace at least this slow regardless of
	// the rate, and emits the one-line slow-request log for it. 0 selects
	// 250ms; negative disables slow capture.
	SlowThreshold time.Duration
	// RingSize bounds retained traces (0 selects 256).
	RingSize int
	// Log receives the one-line structured slow-request summaries; nil
	// selects the standard logger.
	Log func(format string, args ...any)
	// OnSampled, OnDropped, and OnSlow are metric hooks: a trace admitted
	// to the ring, a finished trace not admitted, a trace at or over the
	// slow threshold. Optional.
	OnSampled, OnDropped, OnSlow func()
}

// Tracer samples request traces into a bounded ring. A nil *Tracer is a
// valid disabled tracer.
type Tracer struct {
	every int
	slow  time.Duration
	logf  func(format string, args ...any)

	onSampled, onDropped, onSlow func()

	mu   sync.Mutex
	seq  uint64
	ring []TraceJSON // capacity-bounded, oldest overwritten
	next int
	n    int
}

// New returns a Tracer with the given config.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.Log == nil {
		cfg.Log = log.Printf
	}
	return &Tracer{
		every:     cfg.SampleEvery,
		slow:      cfg.SlowThreshold,
		logf:      cfg.Log,
		onSampled: cfg.OnSampled,
		onDropped: cfg.OnDropped,
		onSlow:    cfg.OnSlow,
		ring:      make([]TraceJSON, cfg.RingSize),
	}
}

// Enabled reports whether tracing is on. Nil-safe; the proxy's hot path
// guards every per-request trace allocation behind it.
func (t *Tracer) Enabled() bool { return t != nil }

// StartRequest opens a root span. remote is the incoming X-DPC-Trace
// header value: a valid id is adopted (stitching this hop's trace to the
// upstream proxy's) and forces ring admission; anything else starts a
// fresh trace subject to rate sampling.
func (t *Tracer) StartRequest(name, remote string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		name:   name,
		root:   &rootState{began: time.Now()},
		dur:    -1,
		ttfb:   -1,
		isRoot: true,
		tracer: t,
	}
	if validID(remote) {
		s.id, s.remote, s.sampled = remote, true, true
		return s
	}
	s.id = newID()
	t.mu.Lock()
	t.seq++
	s.sampled = (t.seq-1)%uint64(t.every) == 0
	t.mu.Unlock()
	return s
}

// finish files a completed root span: admit to the ring when rate- or
// remote-sampled or slow, count the outcome, and log slow requests.
func (t *Tracer) finish(s *Span) {
	slow := t.slow >= 0 && s.dur >= t.slow
	if !s.sampled && !slow {
		if t.onDropped != nil {
			t.onDropped()
		}
		return
	}
	tj := snapshot(s, slow)
	t.mu.Lock()
	t.ring[t.next] = tj
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	if t.onSampled != nil {
		t.onSampled()
	}
	if slow {
		if t.onSlow != nil {
			t.onSlow()
		}
		t.logf("dpc.trace slow id=%s name=%q dur_ms=%d ttfb_ms=%d bytes=%d spans=%d remote=%v",
			tj.ID, tj.Root.Name, tj.DurUS/1000, tj.Root.TTFBUS/1000, tj.Root.Bytes, spanCount(tj.Root), tj.Remote)
	}
}

// Traces returns the retained traces newest-first, filtered to those at
// least minDur long (0 returns everything).
func (t *Tracer) Traces(minDur time.Duration) []TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceJSON, 0, t.n)
	for i := 0; i < t.n; i++ {
		// Walk backward from the most recently written slot.
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if tj := t.ring[idx]; tj.DurUS >= minDur.Microseconds() {
			out = append(out, tj)
		}
	}
	return out
}

// Len reports retained traces (tests).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// --- captured (JSON) form ---

// TraceJSON is one captured trace as served by /_dpc/trace.
type TraceJSON struct {
	// ID is the trace id, shared across proxy hops when propagated.
	ID string `json:"id"`
	// Remote marks a trace whose id was adopted from an upstream proxy's
	// X-DPC-Trace header (this tree stitches under the caller's).
	Remote bool `json:"remote,omitempty"`
	// Slow marks a trace admitted by the slow threshold.
	Slow bool `json:"slow,omitempty"`
	// Start is the request's wall-clock start.
	Start time.Time `json:"start"`
	// DurUS is the end-to-end duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Root is the request's root span.
	Root SpanJSON `json:"root"`
}

// SpanJSON is one captured span.
type SpanJSON struct {
	Name string `json:"name"`
	// StartUS is the offset from the trace start, microseconds.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds; -1 when the span had
	// not finished at capture time.
	DurUS int64 `json:"dur_us"`
	// Bytes are the response bytes attributed to the span.
	Bytes int64 `json:"bytes,omitempty"`
	// TTFBUS is the time to the span's first response byte, microseconds
	// (omitted when no byte was attributed).
	TTFBUS int64 `json:"ttfb_us,omitempty"`
	// Truncated counts events plus children dropped past the per-span
	// bounds.
	Truncated int         `json:"truncated,omitempty"`
	Events    []EventJSON `json:"events,omitempty"`
	Children  []SpanJSON  `json:"children,omitempty"`
}

// EventJSON is one captured decision event.
type EventJSON struct {
	AtUS int64  `json:"at_us"`
	Kind Kind   `json:"kind"`
	Tier string `json:"tier,omitempty"`
	Note string `json:"note,omitempty"`
	N    int64  `json:"n,omitempty"`
}

// snapshot deep-copies a span tree into its immutable captured form. Each
// span is locked individually, so concurrently finishing children are
// captured consistently (an unfinished child appears with DurUS -1).
func snapshot(s *Span, slow bool) TraceJSON {
	return TraceJSON{
		ID:     s.id,
		Remote: s.remote,
		Slow:   slow,
		Start:  s.root.began,
		DurUS:  s.dur.Microseconds(),
		Root:   snapshotSpan(s),
	}
}

func snapshotSpan(s *Span) SpanJSON {
	s.mu.Lock()
	sj := SpanJSON{
		Name:      s.name,
		StartUS:   s.start.Microseconds(),
		DurUS:     s.dur.Microseconds(),
		Bytes:     s.bytes,
		Truncated: s.truncEv + s.truncCh,
	}
	if s.ttfb >= 0 {
		sj.TTFBUS = s.ttfb.Microseconds()
	}
	if len(s.events) > 0 {
		sj.Events = make([]EventJSON, len(s.events))
		for i, e := range s.events {
			sj.Events[i] = EventJSON{AtUS: e.at.Microseconds(), Kind: e.kind, Tier: e.tier, Note: e.note, N: e.n}
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	if len(children) > 0 {
		sj.Children = make([]SpanJSON, len(children))
		for i, c := range children {
			sj.Children[i] = snapshotSpan(c)
		}
	}
	return sj
}

// spanCount counts the spans of a captured tree.
func spanCount(s SpanJSON) int {
	n := 1
	for _, c := range s.Children {
		n += spanCount(c)
	}
	return n
}

// --- trace ids ---

const idHex = "0123456789abcdef"

// newID returns a 16-hex-digit random trace id.
func newID() string {
	v := rand.Uint64()
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = idHex[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// validID reports whether v is a well-formed propagated trace id.
func validID(v string) bool {
	if len(v) != 16 {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseMinMS parses a "?min_ms=" query value into a duration filter for
// Traces; empty or invalid values mean no filter.
func ParseMinMS(v string) time.Duration {
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}
