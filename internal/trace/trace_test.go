package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer(cfg Config) *Tracer {
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	return New(cfg)
}

// Sampling is deterministic: with SampleEvery=N, exactly requests
// 1, N+1, 2N+1, … are rate-sampled, independent of timing.
func TestSamplingDeterminism(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 4, SlowThreshold: -1, RingSize: 64})
	var sampledIdx []int
	for i := 1; i <= 12; i++ {
		s := tr.StartRequest("GET /x", "")
		if s.Sampled() {
			sampledIdx = append(sampledIdx, i)
		}
		s.Finish()
	}
	want := []int{1, 5, 9}
	if len(sampledIdx) != len(want) {
		t.Fatalf("sampled requests %v, want %v", sampledIdx, want)
	}
	for i := range want {
		if sampledIdx[i] != want[i] {
			t.Fatalf("sampled requests %v, want %v", sampledIdx, want)
		}
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("ring holds %d traces, want 3", got)
	}
	// Re-running an identical sequence on a fresh tracer samples the same
	// positions.
	tr2 := newTestTracer(Config{SampleEvery: 4, SlowThreshold: -1, RingSize: 64})
	for i := 1; i <= 12; i++ {
		s := tr2.StartRequest("GET /x", "")
		if s.Sampled() != (i%4 == 1) {
			t.Fatalf("request %d: Sampled=%v, not deterministic", i, s.Sampled())
		}
		s.Finish()
	}
}

// A slow request is captured even when rate sampling would have dropped
// it, and the one-line slow log fires.
func TestSlowAlwaysCaptured(t *testing.T) {
	var logged []string
	var mu sync.Mutex
	tr := New(Config{
		SampleEvery:   1 << 30, // rate-sample effectively nothing
		SlowThreshold: time.Nanosecond,
		RingSize:      8,
		Log: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, format)
			mu.Unlock()
		},
	})
	// The very first request is rate-sampled (seq 1); use the second to
	// prove slow admission alone captures a trace.
	first := tr.StartRequest("GET /slow", "")
	first.Finish()
	s2 := tr.StartRequest("GET /slow2", "")
	if s2.Sampled() {
		t.Fatal("second request unexpectedly rate-sampled")
	}
	time.Sleep(time.Millisecond)
	s2.Finish()
	traces := tr.Traces(0)
	found := false
	for _, tj := range traces {
		if tj.Root.Name == "GET /slow2" && tj.Slow {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow unsampled request not captured: %+v", traces)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("no slow-request log emitted")
	}
	if !strings.Contains(logged[0], "dpc.trace slow") {
		t.Fatalf("slow log %q lacks the dpc.trace slow prefix", logged[0])
	}
}

// The ring never exceeds its bound under a storm of sampled requests, and
// serves newest-first.
func TestRingBoundingUnderStorm(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1, RingSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartRequest("GET /storm", "")
				s.Child("stage").Finish()
				s.Finish()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 32 {
		t.Fatalf("ring holds %d traces, want exactly its bound 32", got)
	}
	if got := len(tr.Traces(0)); got != 32 {
		t.Fatalf("Traces returned %d, want 32", got)
	}
	// min_ms filtering: everything here is far under a second.
	if got := len(tr.Traces(time.Second)); got != 0 {
		t.Fatalf("Traces(1s) returned %d, want 0", got)
	}
}

// Concurrent span finishes racing a ring capture must be safe (run under
// -race in CI) and capture a consistent tree: unfinished children appear
// with dur_us = -1, finished ones with a real duration.
func TestConcurrentFinishVsCapture(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1, RingSize: 64})
	for iter := 0; iter < 50; iter++ {
		s := tr.StartRequest("GET /race", "")
		spans := make([]*Span, 8)
		for i := range spans {
			spans[i] = s.Child("child")
		}
		var wg sync.WaitGroup
		for _, c := range spans {
			wg.Add(1)
			go func(c *Span) {
				defer wg.Done()
				c.Event(KindHit, "static", "", 1)
				c.MarkFirstByte()
				c.AddBytes(10)
				c.Finish()
			}(c)
		}
		// Capture concurrently with the children finishing.
		go s.Finish()
		go tr.Traces(0)
		wg.Wait()
		s.Finish() // idempotent
	}
	if tr.Len() == 0 {
		t.Fatal("no traces captured")
	}
}

// The disabled path — nil tracer, nil spans — allocates nothing. This is
// the acceptance bound for tracing-off overhead on the request hot path.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("nil tracer enabled")
		}
		s := tr.StartRequest("GET /x", "")
		st := s.Child("stage")
		st.Event(KindHit, "static", "", 0)
		frag := st.Child("fragment")
		frag.AddBytes(128)
		frag.MarkFirstByte()
		frag.Finish()
		st.Finish()
		s.AddBytes(1)
		s.Finish()
		if s.Sampled() || s.TraceID() != "" {
			t.Fatal("nil span sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per request, want 0", allocs)
	}
}

// BenchmarkDisabledTracer measures the disabled path's per-request cost.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartRequest("GET /x", "")
		for j := 0; j < 8; j++ {
			c := s.Child("stage")
			c.Event(KindMiss, "page", "", 0)
			c.Finish()
		}
		s.Finish()
	}
}

// BenchmarkEnabledUnsampledTrace measures the recording cost a request
// pays when tracing is on (tail sampling records every request; the rate
// only gates ring admission).
func BenchmarkEnabledUnsampledTrace(b *testing.B) {
	tr := New(Config{SampleEvery: 1 << 30, SlowThreshold: -1, RingSize: 8,
		Log: func(string, ...any) {}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartRequest("GET /x", "")
		for j := 0; j < 8; j++ {
			c := s.Child("stage")
			c.Event(KindMiss, "page", "", 0)
			c.Finish()
		}
		s.Finish()
	}
}

// A remote trace id is adopted verbatim, forces admission, and marks the
// capture as remote; malformed ids start a fresh trace.
func TestRemotePropagation(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1 << 30, SlowThreshold: -1, RingSize: 8})
	const id = "00c0ffee00c0ffee"
	s := tr.StartRequest("GET /hop", id)
	if !s.Sampled() || s.TraceID() != id {
		t.Fatalf("remote id not adopted: sampled=%v id=%q", s.Sampled(), s.TraceID())
	}
	s.Finish()
	traces := tr.Traces(0)
	if len(traces) != 1 || traces[0].ID != id || !traces[0].Remote {
		t.Fatalf("remote trace not captured: %+v", traces)
	}
	for _, bad := range []string{"xyz", "00C0FFEE00C0FFEE", "0123", strings.Repeat("a", 17)} {
		s := tr.StartRequest("GET /hop", bad)
		if s.TraceID() == bad {
			t.Fatalf("malformed id %q adopted", bad)
		}
		s.Finish()
	}
}

// The captured tree preserves structure, events, bytes, and TTFB, and
// serializes to JSON.
func TestCaptureShape(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1, RingSize: 8})
	s := tr.StartRequest("GET /page", "")
	st := s.Child("assemble")
	f1 := st.Child("fragment")
	f1.Event(KindHit, "fragment", "3:9", 42)
	f1.Finish()
	f2 := st.Child("fragment")
	f2.Event(KindMiss, "fragment", "4:1", 0)
	f2.Finish()
	st.Finish()
	s.MarkFirstByte()
	s.AddBytes(1234)
	s.Finish()

	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	root := traces[0].Root
	if root.Name != "GET /page" || root.Bytes != 1234 {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "assemble" {
		t.Fatalf("children = %+v", root.Children)
	}
	frags := root.Children[0].Children
	if len(frags) != 2 || frags[0].Events[0].Kind != KindHit || frags[1].Events[0].Kind != KindMiss {
		t.Fatalf("fragment spans = %+v", frags)
	}
	if frags[0].Events[0].Note != "3:9" || frags[0].Events[0].N != 42 {
		t.Fatalf("fragment event = %+v", frags[0].Events[0])
	}
	raw, err := json.Marshal(traces)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"hit"`) {
		t.Fatalf("JSON lacks event kinds: %s", raw)
	}
}

// Per-span bounds hold: children and events past the caps are counted,
// not retained.
func TestSpanBounds(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1, RingSize: 4})
	s := tr.StartRequest("GET /big", "")
	for i := 0; i < maxChildren+10; i++ {
		s.Child("c").Finish()
	}
	for i := 0; i < maxEvents+10; i++ {
		s.Event(KindInfo, "", "", 0)
	}
	s.Finish()
	root := tr.Traces(0)[0].Root
	if len(root.Children) != maxChildren || len(root.Events) != maxEvents {
		t.Fatalf("bounds not enforced: %d children, %d events", len(root.Children), len(root.Events))
	}
	if root.Truncated != 20 {
		t.Fatalf("Truncated = %d, want 20", root.Truncated)
	}
}

// Context threading round-trips the span.
func TestContext(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1})
	s := tr.StartRequest("GET /ctx", "")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span not carried by context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a span")
	}
	s.Finish()
}

func TestParseMinMS(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"bogus", 0}, {"-5", 0}, {"0", 0},
		{"15", 15 * time.Millisecond}, {"2500", 2500 * time.Millisecond},
	} {
		if got := ParseMinMS(tc.in); got != tc.want {
			t.Errorf("ParseMinMS(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
