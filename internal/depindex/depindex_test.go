package depindex

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpcache/internal/clock"
)

func newTestIndex(budget int64, hz time.Duration, clk clock.Clock) *Index {
	return New(Config{Shards: 4, ByteBudget: budget, Horizon: hz, Clock: clk})
}

func TestRecordAndDependents(t *testing.T) {
	ix := newTestIndex(0, time.Minute, nil)
	ix.Record(Ref(1, 1), "pageA")
	ix.Record(Ref(1, 1), "pageB")
	ix.Record(Ref(2, 1), "pageA")

	keys, exact := ix.Dependents(Ref(1, 1))
	if !exact || len(keys) != 2 {
		t.Fatalf("Dependents(1:1) = %v, exact=%v", keys, exact)
	}
	keys, exact = ix.Dependents(Ref(2, 1))
	if !exact || len(keys) != 1 || keys[0] != "pageA" {
		t.Fatalf("Dependents(2:1) = %v, exact=%v", keys, exact)
	}
	// A never-recorded fragment is an authoritative empty answer as long
	// as nothing has been evicted.
	keys, exact = ix.Dependents(Ref(9, 9))
	if !exact || keys != nil {
		t.Fatalf("Dependents(9:9) = %v, exact=%v, want exact empty", keys, exact)
	}
	if st := ix.Stats(); st.Fragments != 2 || st.Edges != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateEdgesNotDoubleCounted(t *testing.T) {
	ix := newTestIndex(0, time.Minute, nil)
	ix.Record("r", "k")
	b1 := ix.Stats().Bytes
	ix.Record("r", "k")
	if b2 := ix.Stats().Bytes; b2 != b1 {
		t.Fatalf("duplicate edge grew bytes %d → %d", b1, b2)
	}
	if keys, _ := ix.Dependents("r"); len(keys) != 1 {
		t.Fatalf("keys = %v", keys)
	}
}

// Edges expire after the horizon: the entries they describe are
// TTL-bounded, so the index must not outremember the tiers.
func TestEdgesExpireAfterHorizon(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	ix := newTestIndex(0, 10*time.Second, fake)
	ix.Record("r", "k")
	fake.Advance(11 * time.Second)
	keys, exact := ix.Dependents("r")
	if !exact || len(keys) != 0 {
		t.Fatalf("expired edge survived: %v, exact=%v", keys, exact)
	}
	if st := ix.Stats(); st.Fragments != 0 || st.Bytes != 0 {
		t.Fatalf("expired fragment not reclaimed: %+v", st)
	}
}

// Eviction under byte pressure must make misses conservative (exact =
// false) for one horizon, then heal: after the horizon every described
// entry has expired anyway, so an authoritative empty answer is sound
// again.
func TestEvictionFallbackWindowHeals(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	const hz = 10 * time.Second
	ix := newTestIndex(512, hz, fake)
	for i := 0; i < 64; i++ {
		ix.Record(Ref(uint32(i), 1), fmt.Sprintf("page-%d-with-a-long-key", i))
	}
	st := ix.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 512, st)
	}
	if st.Bytes > 512 {
		t.Fatalf("index settled over budget: %+v", st)
	}
	// Some fragment was evicted; a miss anywhere must now be inexact
	// (shard-granular — assert on a ref we know was evicted: the oldest).
	inexactSeen := false
	for i := 0; i < 64; i++ {
		if _, exact := ix.Dependents(Ref(uint32(i), 1)); !exact {
			inexactSeen = true
		}
	}
	if !inexactSeen {
		t.Fatal("no lookup answered conservatively after eviction")
	}
	if ix.Stats().Inexact == 0 {
		t.Fatal("inexact lookups not counted")
	}
	// Past the horizon the window closes.
	fake.Advance(hz + time.Second)
	if _, exact := ix.Dependents(Ref(999, 1)); !exact {
		t.Fatal("conservative window never healed")
	}
}

func TestTombstones(t *testing.T) {
	ix := newTestIndex(0, time.Minute, nil)
	if ix.AnyInvalid([]string{"a", "b"}) {
		t.Fatal("empty index reported invalid refs")
	}
	ix.MarkInvalid("b")
	if !ix.AnyInvalid([]string{"a", "b"}) {
		t.Fatal("marked ref not reported")
	}
	if ix.AnyInvalid([]string{"a"}) {
		t.Fatal("unmarked ref reported invalid")
	}
	if ix.AnyInvalid(nil) {
		t.Fatal("nil refs reported invalid")
	}
}

func TestTombstonesExpire(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	ix := newTestIndex(0, time.Second, fake)
	ix.MarkInvalid("r")
	fake.Advance(tombstoneTTL + time.Second)
	if ix.AnyInvalid([]string{"r"}) {
		t.Fatal("tombstone survived past its TTL")
	}
}

func TestEpochBumpsOnFlush(t *testing.T) {
	ix := newTestIndex(0, time.Minute, nil)
	e0 := ix.Epoch()
	ix.BumpEpoch()
	if ix.Epoch() != e0+1 {
		t.Fatalf("epoch = %d after bump", ix.Epoch())
	}
	ix.Record("r", "k")
	ix.Flush()
	if ix.Epoch() == e0+1 {
		t.Fatal("Flush did not bump the epoch")
	}
	if keys, exact := ix.Dependents("r"); !exact || len(keys) != 0 {
		t.Fatalf("flush left edges: %v exact=%v", keys, exact)
	}
	if st := ix.Stats(); st.Bytes != 0 || st.Fragments != 0 {
		t.Fatalf("flush left bytes: %+v", st)
	}
}

// Tombstone-set overflow must fail conservative: the shard forgets its
// markers but bumps the epoch so every in-flight fill discards.
func TestTombstoneOverflowBumpsEpoch(t *testing.T) {
	ix := New(Config{Shards: 1, Horizon: time.Minute})
	e0 := ix.Epoch()
	for i := 0; i <= maxTombstones; i++ {
		ix.MarkInvalid(fmt.Sprintf("ref-%d", i))
	}
	if ix.Epoch() == e0 {
		t.Fatal("overflowing the tombstone set did not bump the epoch")
	}
}

func TestConcurrentRecordInvalidateLookup(t *testing.T) {
	ix := newTestIndex(16<<10, time.Minute, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ref := Ref(uint32(i%37), uint32(w))
				ix.Record(ref, fmt.Sprintf("page-%d", i%11))
				ix.MarkInvalid(Ref(uint32(i%37), uint32(w^1)))
				ix.Dependents(ref)
				ix.AnyInvalid([]string{ref})
			}
		}(w)
	}
	wg.Wait()
	if st := ix.Stats(); st.Bytes > 16<<10 {
		t.Fatalf("index settled over budget: %+v", st)
	}
}

func BenchmarkRecordDependents(b *testing.B) {
	ix := New(Config{ByteBudget: 1 << 20, Horizon: time.Minute})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ref := Ref(uint32(i%512), 1)
			ix.Record(ref, "GET\x00/page/synth?page=0\x00")
			if i%8 == 0 {
				ix.Dependents(ref)
			}
			i++
		}
	})
}

// The conservative window must cover hits too: a fragment evicted and
// then re-recorded holds only its post-eviction edges, so trusting the
// hit would silently forget the pre-eviction dependents.
func TestEvictionWindowQualifiesHits(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	const hz = 10 * time.Second
	ix := New(Config{Shards: 1, ByteBudget: 300, Horizon: hz, Clock: fake})
	ix.Record("victim", "pre-eviction-page-with-a-long-key")
	for i := 0; i < 8; i++ {
		ix.Record(Ref(uint32(i), 1), "filler-page-with-a-rather-long-key")
	}
	if ix.Stats().Evictions == 0 {
		t.Fatal("test setup: no evictions occurred")
	}
	// Re-record the (possibly evicted) fragment: the hit must still be
	// answered conservatively inside the window.
	ix.Record("victim", "post-eviction-page")
	if _, exact := ix.Dependents("victim"); exact {
		t.Fatal("hit inside the eviction window claimed to be exact")
	}
	fake.Advance(hz + time.Second)
	ix.Record("victim", "post-window-page")
	if keys, exact := ix.Dependents("victim"); !exact || len(keys) == 0 {
		t.Fatalf("post-window hit = %v, exact=%v", keys, exact)
	}
}
