// Package depindex tracks which cache-tier entries were composed from
// which fragments, so a fragment invalidation can be fanned out to the
// page and static tiers surgically instead of waiting for their TTLs.
//
// The paper's correctness story for dynamic content is that freshness is
// enforced by *invalidation*, not time: the BEM knows the moment a
// fragment dies. But a whole-page entry is an opaque byte blob — the tier
// that holds it cannot know which fragments are inside. The dependency
// index is the missing edge set: during assembly the proxy records, for
// every fragment reference whose bytes entered a captured page, an edge
//
//	fragment ref ("dpcKey:gen") → page/static store key
//
// and the coherency fabric's tier subscribers consult it on each
// invalidation to drop exactly the entries built from the dead fragment.
//
// The index is best-effort storage with *sound degradation*: it is
// sharded, byte-bounded, and evicts least-recently-recorded fragments
// under pressure. Because a missing edge must never mean a missed
// invalidation, every answer is qualified: Dependents reports exact=false
// whenever the asked-for fragment could have lost edges to eviction
// recently (each eviction opens a conservative window of one Horizon —
// the maximum lifetime of the entries the index describes — during which
// no answer from the shard, hit or miss, is trusted), and the subscriber
// falls back to a scoped flush of its tier. Edges themselves expire after Horizon: an entry the tier already
// let go by TTL needs no edge, and a stale edge costs at worst one
// redundant Delete of a non-resident key.
//
// The index also arbitrates the fill/invalidate race. A page capture is
// in flight for the whole request: its fragments are read early, the
// finished page is filed late, and an invalidation landing in between
// would find nothing to delete yet — the stale page would be filed
// *after* the drop and survive until TTL. Two mechanisms close this:
//
//   - MarkInvalid / AnyInvalid: subscribers tombstone each invalidated
//     ref *before* deleting dependents; fillers check their refs *after*
//     filing and delete their own entry on a hit. Whichever side runs
//     second sees the other's write, so no interleaving files a page
//     containing a dropped fragment's bytes without also removing it.
//   - Epoch: scoped flushes (sequence gaps, explicit tier flushes) bump a
//     generation counter; a filler whose capture began under an older
//     epoch discards its fill, since the flush could not have removed a
//     page that was not yet filed.
package depindex

import (
	"container/list"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"dpcache/internal/clock"
)

// Ref names a fragment reference the way invalidation events do: the DPC
// slot key plus the generation, "key:gen". A generation is invalidated at
// most once, so edges keyed this way are exact — slot reuse bumps the
// generation and cannot alias old edges onto new fragments.
func Ref(key, gen uint32) string { return fmt.Sprintf("%d:%d", key, gen) }

// Config parameterizes an Index.
type Config struct {
	// Shards is rounded up to a power of two; 0 selects 16.
	Shards int
	// ByteBudget bounds the retained edge bytes (ref + key string bytes
	// plus a fixed per-edge overhead); 0 selects 1 MiB. Over budget, the
	// least-recently-recorded fragment's edges are evicted and the
	// owning shard answers misses conservatively for one Horizon.
	ByteBudget int64
	// Horizon is the maximum lifetime of the entries the index describes
	// (the page tier's TTL): edges expire after it, and an eviction's
	// conservative-miss window closes after it. 0 selects 2s.
	Horizon time.Duration
	// Clock drives expiry; nil selects the real clock.
	Clock clock.Clock
}

// Stats is a point-in-time snapshot of index occupancy and activity.
type Stats struct {
	Fragments int   `json:"fragments"`
	Edges     int   `json:"edges"`
	Bytes     int64 `json:"bytes"`
	// Records counts Record calls; Evictions counts fragments whose
	// edges were evicted under byte pressure.
	Records   int64 `json:"records"`
	Evictions int64 `json:"evictions"`
	// Lookups counts Dependents calls; Inexact counts the ones answered
	// conservatively (the caller had to fall back to a scoped flush).
	Lookups int64 `json:"lookups"`
	Inexact int64 `json:"inexact"`
	// Tombstones counts currently retained invalidated-ref markers.
	Tombstones int `json:"tombstones"`
}

// perEdgeOverhead approximates the map/list bookkeeping bytes charged per
// edge on top of the string bytes themselves.
const perEdgeOverhead = 64

// tombstoneTTL bounds how long an invalidated ref is remembered for the
// fill-race check. It needs to outlive any in-flight request (the proxy's
// origin client times out at 30s); past it the capture is long settled.
const tombstoneTTL = 2 * time.Minute

// maxTombstones bounds each shard's tombstone set. On overflow the shard
// clears it and bumps the epoch instead — every in-flight fill discards,
// which is the same conservative direction as a scoped flush.
const maxTombstones = 4096

// Index is the dependency index. It is safe for concurrent use.
type Index struct {
	shards []ishard
	mask   uint64
	seed   maphash.Seed
	clk    clock.Clock
	budget int64
	hz     time.Duration

	bytes atomic.Int64
	epoch atomic.Uint64

	records, evictions, lookups, inexact atomic.Int64
}

type ishard struct {
	mu    sync.Mutex
	frags map[string]*fragEntry
	lru   *list.List // front = most recently recorded; values are *fragEntry
	// tomb holds invalidated refs (MarkInvalid) until their deadline.
	tomb map[string]time.Time
	// inexactUntil: after an eviction, every answer from this shard is
	// qualified exact=false (a re-recorded fragment may be missing its
	// pre-eviction edges) until the evicted edges' entries have
	// certainly expired from the tiers they described.
	inexactUntil time.Time
	epoch        *atomic.Uint64
}

type fragEntry struct {
	ref   string
	keys  map[string]time.Time // dependent key → edge deadline
	bytes int64
	elem  *list.Element
}

// New returns an index.
func New(cfg Config) *Index {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	budget := cfg.ByteBudget
	if budget <= 0 {
		budget = 1 << 20
	}
	hz := cfg.Horizon
	if hz <= 0 {
		hz = 2 * time.Second
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	ix := &Index{
		shards: make([]ishard, p),
		mask:   uint64(p - 1),
		seed:   maphash.MakeSeed(),
		clk:    clk,
		budget: budget,
		hz:     hz,
	}
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.frags = make(map[string]*fragEntry)
		sh.lru = list.New()
		sh.tomb = make(map[string]time.Time)
		sh.epoch = &ix.epoch
	}
	return ix
}

func (ix *Index) locate(ref string) *ishard {
	return &ix.shards[maphash.String(ix.seed, ref)&ix.mask]
}

// Record adds (or refreshes) the edge ref → key. The edge expires after
// the index's Horizon — the longest the described entry can stay
// resident — so the index never outremembers the tiers it describes.
func (ix *Index) Record(ref, key string) {
	ix.records.Add(1)
	now := ix.clk.Now()
	deadline := now.Add(ix.hz)
	sh := ix.locate(ref)
	sh.mu.Lock()
	e, ok := sh.frags[ref]
	if !ok {
		e = &fragEntry{ref: ref, keys: make(map[string]time.Time)}
		e.bytes = int64(len(ref)) + perEdgeOverhead
		e.elem = sh.lru.PushFront(e)
		sh.frags[ref] = e
		ix.bytes.Add(e.bytes)
	} else {
		sh.lru.MoveToFront(e.elem)
	}
	if _, dup := e.keys[key]; !dup {
		delta := int64(len(key)) + perEdgeOverhead
		e.bytes += delta
		ix.bytes.Add(delta)
	}
	e.keys[key] = deadline
	sh.mu.Unlock()
	if ix.bytes.Load() > ix.budget {
		ix.evict(now)
	}
}

// evict drops least-recently-recorded fragments, round-robin across
// shards, until the index is back under budget. Each eviction opens the
// owning shard's conservative-miss window.
func (ix *Index) evict(now time.Time) {
	until := now.Add(ix.hz)
	for ix.bytes.Load() > ix.budget {
		evicted := false
		for i := range ix.shards {
			sh := &ix.shards[i]
			sh.mu.Lock()
			if back := sh.lru.Back(); back != nil {
				e := back.Value.(*fragEntry)
				sh.removeLocked(e)
				ix.bytes.Add(-e.bytes)
				if until.After(sh.inexactUntil) {
					sh.inexactUntil = until
				}
				ix.evictions.Add(1)
				evicted = true
			}
			sh.mu.Unlock()
			if ix.bytes.Load() <= ix.budget {
				return
			}
		}
		if !evicted {
			return // nothing left to give back
		}
	}
}

func (sh *ishard) removeLocked(e *fragEntry) {
	sh.lru.Remove(e.elem)
	delete(sh.frags, e.ref)
}

// Dependents returns the keys recorded as composed from ref. exact
// reports whether the answer is authoritative: when false (the shard
// evicted edges recently, so ref's may be among the lost), the caller
// must treat every entry of its tier as a potential dependent and flush.
// The window applies to hits as well as misses — a fragment whose entry
// was evicted and then re-recorded holds only its post-eviction edges,
// so inside the window even a hit may be missing dependents.
func (ix *Index) Dependents(ref string) (keys []string, exact bool) {
	ix.lookups.Add(1)
	now := ix.clk.Now()
	sh := ix.locate(ref)
	sh.mu.Lock()
	exact = !now.Before(sh.inexactUntil)
	e, ok := sh.frags[ref]
	if !ok {
		sh.mu.Unlock()
		if !exact {
			ix.inexact.Add(1)
		}
		return nil, exact
	}
	var removed int64
	for k, deadline := range e.keys {
		if now.Before(deadline) {
			keys = append(keys, k)
		} else {
			delete(e.keys, k)
			removed += int64(len(k)) + perEdgeOverhead
		}
	}
	e.bytes -= removed
	if len(e.keys) == 0 {
		removed += int64(len(e.ref)) + perEdgeOverhead
		sh.removeLocked(e)
	}
	sh.mu.Unlock()
	ix.bytes.Add(-removed)
	if !exact {
		ix.inexact.Add(1)
	}
	return keys, exact
}

// MarkInvalid tombstones an invalidated ref so in-flight fills whose
// fragments were read before the invalidation refuse to file (or unfile)
// their capture. Subscribers call it before deleting dependents.
func (ix *Index) MarkInvalid(ref string) {
	now := ix.clk.Now()
	sh := ix.locate(ref)
	sh.mu.Lock()
	if len(sh.tomb) >= maxTombstones {
		for r, deadline := range sh.tomb {
			if !now.Before(deadline) {
				delete(sh.tomb, r)
			}
		}
		if len(sh.tomb) >= maxTombstones {
			// Still full: forget selectively remembering and make every
			// in-flight fill discard instead.
			sh.tomb = make(map[string]time.Time)
			sh.epoch.Add(1)
		}
	}
	sh.tomb[ref] = now.Add(tombstoneTTL)
	sh.mu.Unlock()
}

// AnyInvalid reports whether any of refs has been marked invalid within
// the tombstone window. Fillers call it after filing a capture.
func (ix *Index) AnyInvalid(refs []string) bool {
	if len(refs) == 0 {
		return false
	}
	now := ix.clk.Now()
	for _, ref := range refs {
		sh := ix.locate(ref)
		sh.mu.Lock()
		deadline, ok := sh.tomb[ref]
		sh.mu.Unlock()
		if ok && now.Before(deadline) {
			return true
		}
	}
	return false
}

// Epoch returns the current flush generation. A filler snapshots it when
// its capture begins and discards the fill when it changed by filing
// time — a scoped flush in between could not have removed the capture.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// BumpEpoch advances the flush generation; tier subscribers call it
// whenever they flush (sequence gap, flush-scope event).
func (ix *Index) BumpEpoch() { ix.epoch.Add(1) }

// Flush empties the index (edges and tombstones) and bumps the epoch.
func (ix *Index) Flush() {
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for _, e := range sh.frags {
			ix.bytes.Add(-e.bytes)
		}
		sh.frags = make(map[string]*fragEntry)
		sh.lru.Init()
		sh.tomb = make(map[string]time.Time)
		sh.inexactUntil = time.Time{}
		sh.mu.Unlock()
	}
	ix.epoch.Add(1)
}

// Stats returns a snapshot of index activity.
func (ix *Index) Stats() Stats {
	st := Stats{
		Bytes:     ix.bytes.Load(),
		Records:   ix.records.Load(),
		Evictions: ix.evictions.Load(),
		Lookups:   ix.lookups.Load(),
		Inexact:   ix.inexact.Load(),
	}
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		st.Fragments += len(sh.frags)
		for _, e := range sh.frags {
			st.Edges += len(e.keys)
		}
		st.Tombstones += len(sh.tomb)
		sh.mu.Unlock()
	}
	return st
}
