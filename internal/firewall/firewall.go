// Package firewall models the site firewall of the paper's scan-cost
// analysis (Section 5, Result 1).
//
// Every byte leaving the site is scanned by the firewall at cost y per
// byte; when the DPC is deployed, the proxy additionally scans every
// template byte for tags at cost z per byte, with z ≈ y because both are
// linear-time string matchers (the paper cites KMP). The firewall here is
// a real scanner — a KMP signature set run over all traffic — so the
// experiments charge measured scan work, not a modeled constant.
package firewall

import (
	"net"
	"sync/atomic"

	"dpcache/internal/kmp"
)

// Firewall scans traffic for a signature set and accounts scan cost.
type Firewall struct {
	sigs    []*kmp.Matcher
	scanned atomic.Int64
	matches atomic.Int64
}

// DefaultSignatures is a tiny packet-filter ruleset: enough to make the
// scanner do realistic per-byte work.
func DefaultSignatures() []string {
	return []string{
		"/etc/passwd",
		"<script>alert",
		"cmd.exe",
		"DROP TABLE",
		"\x90\x90\x90\x90", // NOP sled
	}
}

// New compiles a firewall from signature strings; nil uses the defaults.
func New(signatures []string) *Firewall {
	if signatures == nil {
		signatures = DefaultSignatures()
	}
	f := &Firewall{}
	for _, s := range signatures {
		if s == "" {
			continue
		}
		f.sigs = append(f.sigs, kmp.Compile([]byte(s)))
	}
	return f
}

// Scan runs the signature set over p, returning the number of signature
// hits, and accounts len(p) scanned bytes (the per-byte cost model charges
// the byte count once: the signature automata run in parallel in a real
// filter).
func (f *Firewall) Scan(p []byte) int {
	n := 0
	for _, m := range f.sigs {
		n += m.Count(p)
	}
	f.scanned.Add(int64(len(p)))
	f.matches.Add(int64(n))
	return n
}

// ScannedBytes reports total bytes scanned.
func (f *Firewall) ScannedBytes() int64 { return f.scanned.Load() }

// Matches reports total signature hits.
func (f *Firewall) Matches() int64 { return f.matches.Load() }

// Reset zeroes the accounting.
func (f *Firewall) Reset() {
	f.scanned.Store(0)
	f.matches.Store(0)
}

// Cost returns the scan cost at y per byte: scannedBytes·y.
func (f *Firewall) Cost(y float64) float64 { return float64(f.ScannedBytes()) * y }

// TotalScanCost combines firewall and DPC scanning per the paper's
// comparison: the firewall scans wire bytes at y; the DPC scans template
// bytes at z ≈ y. Pass dpcScannedBytes = 0 for the no-cache configuration.
func TotalScanCost(firewallBytes, dpcScannedBytes int64, y float64) float64 {
	return float64(firewallBytes)*y + float64(dpcScannedBytes)*y
}

// Listener wraps l so all bytes read from and written to accepted
// connections pass through the firewall scanner — the packet filter
// sitting on the origin↔external link.
func (f *Firewall) Listener(l net.Listener) net.Listener {
	return &fwListener{Listener: l, f: f}
}

type fwListener struct {
	net.Listener
	f *Firewall
}

func (l *fwListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &fwConn{Conn: c, f: l.f}, nil
}

type fwConn struct {
	net.Conn
	f *Firewall
}

func (c *fwConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.f.Scan(p[:n])
	}
	return n, err
}

func (c *fwConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.f.Scan(p[:n])
	}
	return n, err
}
