package firewall

import (
	"bytes"
	"io"
	"net"
	"testing"
)

func TestScanCountsBytesAndMatches(t *testing.T) {
	f := New([]string{"attack"})
	hits := f.Scan([]byte("an attack and another attack"))
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if f.ScannedBytes() != 28 {
		t.Fatalf("scanned = %d", f.ScannedBytes())
	}
	if f.Matches() != 2 {
		t.Fatalf("matches = %d", f.Matches())
	}
}

func TestDefaultSignaturesDetect(t *testing.T) {
	f := New(nil)
	if f.Scan([]byte("GET /etc/passwd HTTP/1.1")) == 0 {
		t.Fatal("default signature missed /etc/passwd")
	}
	if f.Scan([]byte("benign content")) != 0 {
		t.Fatal("false positive on benign content")
	}
}

func TestEmptySignatureSkipped(t *testing.T) {
	f := New([]string{"", "x"})
	if f.Scan([]byte("x")) != 1 {
		t.Fatal("non-empty signature lost")
	}
}

func TestCostLinearInY(t *testing.T) {
	f := New([]string{"z"})
	f.Scan(bytes.Repeat([]byte("a"), 1000))
	if f.Cost(2) != 2000 {
		t.Fatalf("Cost(2) = %v", f.Cost(2))
	}
	if f.Cost(0.5) != 500 {
		t.Fatalf("Cost(0.5) = %v", f.Cost(0.5))
	}
}

func TestReset(t *testing.T) {
	f := New([]string{"z"})
	f.Scan([]byte("zz"))
	f.Reset()
	if f.ScannedBytes() != 0 || f.Matches() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestTotalScanCost(t *testing.T) {
	// No-cache: only firewall. Cached: firewall + DPC at z ≈ y.
	nc := TotalScanCost(1000, 0, 1)
	c := TotalScanCost(400, 400, 1)
	if nc != 1000 || c != 800 {
		t.Fatalf("nc=%v c=%v", nc, c)
	}
}

func TestListenerScansBothDirections(t *testing.T) {
	f := New([]string{"needle"})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := f.Listener(inner)
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if _, err := client.Write([]byte("has a needle inside")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 19)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Write([]byte("reply with needle too")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 21)
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if f.Matches() != 2 {
		t.Fatalf("matches = %d, want 2 (one per direction)", f.Matches())
	}
	if f.ScannedBytes() != 19+21 {
		t.Fatalf("scanned = %d, want 40", f.ScannedBytes())
	}
}

func BenchmarkScan4KB(b *testing.B) {
	f := New(nil)
	payload := bytes.Repeat([]byte("<html><body>hello world</body></html>"), 120)[:4096]
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Scan(payload)
	}
}
