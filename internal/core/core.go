// Package core assembles the full dynamic proxy caching system of the
// paper's Figure 4: content repository, origin application server, Back
// End Monitor, and the Dynamic Proxy Cache fronting it all, with the
// origin↔DPC link metered the way the Sniffer measured it.
//
// A System runs in one of two modes:
//
//   - ModeNoCache: the origin serves full pages; the proxy is a pure
//     pass-through (as ISA Server is for dynamic content when the DPC
//     filter is off). This is the B_NC configuration.
//   - ModeCached: the origin runs the BEM and serves templates; the proxy
//     assembles pages from its fragment store. This is the B_C
//     configuration.
//
// Both modes keep the same component topology and connection patterns, so
// measured byte differences are attributable to the caching technique, not
// the plumbing.
package core

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"dpcache/internal/bem"
	"dpcache/internal/coherency"
	"dpcache/internal/dpc"
	"dpcache/internal/firewall"
	"dpcache/internal/fragstore"
	"dpcache/internal/metrics"
	"dpcache/internal/netsim"
	"dpcache/internal/origin"
	"dpcache/internal/repository"
	"dpcache/internal/script"
	"dpcache/internal/tmpl"
	"dpcache/internal/trace"
)

// storeConfig maps the config's Store* selection onto fragstore's config
// for one named store instance. NewSystem has already defaulted Capacity
// by the time this is called. Each proxy's tiered heap file is keyed by
// the instance name ("front", "edge-<name>") so a restarted proxy reopens
// its own file — the warm-restart path — while co-located proxies never
// share one.
func (c Config) storeConfig(instance string) fragstore.Config {
	cfg := fragstore.Config{
		Backend:    c.StoreBackend,
		Capacity:   c.Capacity,
		Shards:     c.StoreShards,
		ByteBudget: c.StoreByteBudget,
		Eviction:   c.StoreEviction,
	}
	if c.StoreBackend == fragstore.BackendTiered {
		cfg.DiskPath = filepath.Join(c.StoreDiskDir, instance+".heap")
		cfg.DiskBudget = c.StoreDiskBudget
		cfg.DiskPageBytes = c.StoreDiskPageBytes
	}
	return cfg
}

// newStore builds one fragment store per proxy.
func (c Config) newStore(instance string) (fragstore.FragmentStore, error) {
	return fragstore.New(c.storeConfig(instance))
}

// Mode selects the system configuration under test.
type Mode int

// System modes.
const (
	// ModeNoCache serves full pages through a pass-through proxy.
	ModeNoCache Mode = iota
	// ModeCached serves templates assembled by the DPC.
	ModeCached
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeCached {
		return "cached"
	}
	return "no-cache"
}

// Config parameterizes a System.
type Config struct {
	// Capacity is the fragment-slot count shared by BEM and DPC.
	// Defaults to 4096.
	Capacity int
	// Codec is the template wire format; defaults to binary.
	Codec tmpl.Codec
	// Strict enables generation-checked assembly with bypass recovery.
	Strict bool
	// ForcedMissProb pins the BEM hit ratio for experiments (Figure 5).
	ForcedMissProb float64
	// StoreBackend selects each proxy's fragment store: "slot" (default,
	// the paper's single-lock array) or "sharded" (per-shard locks, byte
	// budget, eviction). Every proxy — the reverse proxy and each edge —
	// gets its own store instance.
	StoreBackend string
	// StoreShards is the sharded backend's shard count, rounded up to a
	// power of two (0 selects the fragstore default).
	StoreShards int
	// StoreByteBudget bounds resident fragment bytes per sharded store
	// (0 = unbounded). Requires StoreEviction.
	StoreByteBudget int64
	// StoreEviction is the sharded backend's policy: "none", "lru", or
	// "gdsf".
	StoreEviction string
	// StoreDiskDir is the tiered backend's heap-file directory: each
	// proxy gets its own file there ("front.heap", "edge-<name>.heap"),
	// replayed on restart so a bounced proxy serves warm. Required for
	// (and only meaningful with) StoreBackend "tiered".
	StoreDiskDir string
	// StoreDiskBudget bounds each tiered store's disk-resident bytes
	// (0 = unbounded); over budget the disk tier drops its LRU victims.
	StoreDiskBudget int64
	// StoreDiskPageBytes is the heap file's page size (0 selects the
	// diskstore default, 32 KiB).
	StoreDiskPageBytes int
	// Coalesce collapses concurrent identical in-flight origin fetches at
	// each proxy into a single origin request (single-flight, keyed by
	// method, URL, and session identity) whose output is broadcast chunk
	// by chunk to every parked request as the leader's fetch proceeds.
	Coalesce bool
	// CoalesceBufferBytes bounds each flight's broadcast buffer (0 selects
	// the dpc default, 4 MiB); past it, late joiners degrade to their own
	// origin fetch instead of replaying the oversized page.
	CoalesceBufferBytes int
	// Stream enables streaming assembly at each proxy: pages are written
	// to the client as templates decode instead of being buffered whole.
	Stream bool
	// PageCache mounts each proxy's whole-page cache stage (ahead of
	// coalesce): complete responses to anonymous-session GETs are cached
	// by URL for PageCacheTTL and served with X-Cache: PAGE;
	// identity-bearing requests bypass the stage.
	PageCache bool
	// PageCacheTTL bounds page-cache staleness (0 selects the dpc
	// default, 2s).
	PageCacheTTL time.Duration
	// PageCacheEntries bounds each proxy's resident pages (0 selects the
	// dpc default, 1024).
	PageCacheEntries int
	// PageCacheBudget bounds each proxy's resident page bytes (0 =
	// unbounded).
	PageCacheBudget int64
	// DepIndexBudget bounds each proxy's dependency index — the
	// fragment→page edge set the fabric consults for surgical page
	// invalidation (0 selects the dpc default, 1 MiB).
	DepIndexBudget int64
	// PlanCache compiles each distinct template into a cached operator
	// program at every proxy (see dpc.Config.PlanCache): repeat
	// assemblies skip the per-request decode and resolve independent
	// fragment GETs with a bounded parallel prefetch. The streaming
	// interpreter remains the fallback; output bytes are identical.
	PlanCache bool
	// PlanParallelism bounds the plan executor's prefetch fan-out (0
	// selects the dpc default, 4; 1 resolves GETs sequentially).
	PlanParallelism int
	// Fabric wires the coherency invalidation fabric (ModeCached only):
	// a hub is attached to the BEM's invalidation stream and every cache
	// tier of every proxy — fragment store, whole-page tier, static
	// tier — subscribes. Fragment invalidations then drop dependent
	// page-tier entries the moment they happen (via each proxy's
	// dependency index) instead of waiting out PageCacheTTL, which is
	// what makes realistic page TTLs safe. Edges started with StartEdge
	// subscribe automatically too.
	Fabric bool
	// StreamSpoolBytes bounds the strict-mode look-ahead spool used by
	// streaming assembly (0 selects the dpc default, 64 KiB).
	StreamSpoolBytes int
	// PublishInterval is each proxy's background store-stats publish
	// period (0 selects the dpc default of 10s; negative disables).
	PublishInterval time.Duration
	// Seed drives all deterministic randomness.
	Seed int64
	// Latency is the repository's simulated query/update delay.
	Latency repository.LatencyModel
	// ExtraHeaderBytes pads origin response headers (Table 2's f).
	ExtraHeaderBytes int
	// Firewall, when non-nil, scans all origin-link traffic and
	// accumulates scan-cost accounting (Figure 3(a)).
	Firewall *firewall.Firewall
	// Registry receives all component metrics; a fresh one is created
	// when nil.
	Registry *metrics.Registry
	// Trace enables request-scoped tracing: one tracer is shared by the
	// front proxy and every edge, so a request that hops edge → interior
	// proxy (the trace id riding the X-DPC-Trace header) lands as one
	// stitched tree in each node's capture ring at /_dpc/trace.
	Trace bool
	// TraceSampleEvery admits every Nth finished trace to the capture
	// ring (0 selects the trace default, 64; slow requests are always
	// admitted regardless).
	TraceSampleEvery int
	// TraceSlow is the always-capture slow threshold (0 selects the
	// trace default, 250ms; negative disables slow capture).
	TraceSlow time.Duration
	// TraceRing bounds the shared capture ring (0 selects the trace
	// default, 256).
	TraceRing int
	// Pprof mounts net/http/pprof under /_dpc/pprof/ on each proxy's
	// admin surface.
	Pprof bool
	// Admission mounts each proxy's admission-control stage: under
	// measured pressure (origin in-flight, latency EWMA, queue depth,
	// ledger bytes, negative-cached failures) requests are served stale
	// from the cache tiers or shed with a fast 503 + Retry-After instead
	// of queueing on the origin (see dpc.Config.Admission).
	Admission bool
	// AdmissionMaxInFlight bounds concurrent origin-bound requests per
	// proxy (0 = unbounded).
	AdmissionMaxInFlight int
	// AdmissionMaxKeyInFlight bounds them per coalesce key (0 =
	// unbounded).
	AdmissionMaxKeyInFlight int
	// AdmissionMaxTenantInFlight bounds them per X-User tenant (0 =
	// unbounded).
	AdmissionMaxTenantInFlight int
	// AdmissionMaxFlightWaiters bounds followers parked on one coalesce
	// flight (0 = unbounded).
	AdmissionMaxFlightWaiters int
	// AdmissionShedLatency is the origin-latency EWMA threshold past
	// which stale serving is preferred (0 disables the signal).
	AdmissionShedLatency time.Duration
	// AdmissionStaleWindow bounds how far past TTL a cache entry may be
	// served under pressure (0 selects the dpc default, 30s).
	AdmissionStaleWindow time.Duration
	// AdmissionNegTTL is the negative-cache lifetime of origin failures
	// (0 selects the dpc default, 1s).
	AdmissionNegTTL time.Duration
	// AdmissionRetryAfter is the Retry-After hint on shed 503s (0 selects
	// the dpc default, 1s).
	AdmissionRetryAfter time.Duration
	// OriginFaults injects configured misbehavior (latency, errors,
	// hangs, mid-body aborts, a bounded worker pool) in front of the
	// origin's page/static handlers — the saturation experiment's load
	// model. Nil serves faithfully.
	OriginFaults *origin.FaultConfig
}

// System is a fully wired origin + proxy deployment.
type System struct {
	Mode Mode
	// Repo is the content repository; sites are built against it.
	Repo *repository.Repo
	// Monitor is the BEM (nil in ModeNoCache).
	Monitor *bem.Monitor
	// Origin is the application server.
	Origin *origin.Server
	// Proxy is the front end clients talk to.
	Proxy *dpc.Proxy
	// Meter measures the origin↔proxy link.
	Meter *netsim.Meter
	// Hub is the coherency invalidation fabric (nil unless Config.Fabric
	// and ModeCached). Every proxy's tiers are subscribed to it.
	Hub *coherency.Hub
	// Registry aggregates metrics across components.
	Registry *metrics.Registry
	// Tracer is the request tracer shared by the front proxy and every
	// edge (nil unless Config.Trace). Sharing one tracer means an
	// edge-originated trace id resolves in the interior proxy's ring
	// too, and dpc.trace.* counters aggregate cluster-wide.
	Tracer *trace.Tracer

	cfg         Config
	originLn    net.Listener
	proxyLn     net.Listener
	originSrv   *http.Server
	proxySrv    *http.Server
	edges       []*http.Server
	edgeProxies []*dpc.Proxy
	frontStore  io.Closer   // tiered stores hold an open heap file
	edgeStores  []io.Closer // likewise, one per disk-backed edge
	started     bool
}

// proxyConfig translates the system config into one proxy's config.
// tracer may be nil (tracing off); when set it is shared across proxies
// so edge→interior hops stitch into one trace id space.
func (c Config) proxyConfig(originURL string, store fragstore.FragmentStore, reg *metrics.Registry, tracer *trace.Tracer) dpc.Config {
	return dpc.Config{
		OriginURL:           originURL,
		Capacity:            c.Capacity,
		Store:               store,
		Codec:               c.Codec,
		Strict:              c.Strict,
		Coalesce:            c.Coalesce,
		CoalesceBufferBytes: c.CoalesceBufferBytes,
		Stream:              c.Stream,
		StreamSpoolBytes:    c.StreamSpoolBytes,
		PageCache:           c.PageCache,
		PageCacheTTL:        c.PageCacheTTL,
		PageCacheEntries:    c.PageCacheEntries,
		PageCacheBudget:     c.PageCacheBudget,
		DepIndexBudget:      c.DepIndexBudget,
		PlanCache:           c.PlanCache,
		PlanParallelism:     c.PlanParallelism,
		PublishInterval:     c.PublishInterval,
		Registry:            reg,
		Tracer:              tracer,
		Pprof:               c.Pprof,
		Admission:           c.Admission,
		MaxOriginInFlight:   c.AdmissionMaxInFlight,
		MaxKeyInFlight:      c.AdmissionMaxKeyInFlight,
		MaxTenantInFlight:   c.AdmissionMaxTenantInFlight,
		MaxFlightWaiters:    c.AdmissionMaxFlightWaiters,
		ShedLatency:         c.AdmissionShedLatency,
		StaleWindow:         c.AdmissionStaleWindow,
		NegTTL:              c.AdmissionNegTTL,
		RetryAfter:          c.AdmissionRetryAfter,
	}
}

// ProxySubscribers returns one coherency subscriber per cache tier of a
// proxy: the fragment store (slot drops), the whole-page tier, and the
// static tier. The keyed-tier subscribers carry the dpc key schema
// (purge prefixes) and the proxy's dependency index, so fragment
// invalidations drop only the pages composed from the dead fragment;
// surgical drops are reported on reg's dpc.pagecache_invalidations and
// dpc.static_invalidations counters (reg may be nil). The compiled-plan
// tier, when mounted, subscribes for plan-scoped flushes and gap
// recovery. It is the single wiring point shared by
// System.subscribeTiers, dpcd's /_dpc/invalidate endpoint, and the
// facade.
func ProxySubscribers(p *dpc.Proxy, reg *metrics.Registry) []coherency.Subscriber {
	subs := []coherency.Subscriber{coherency.NewStoreSubscriber(p.Store())}
	if pages := p.Pages(); pages != nil {
		sub := coherency.NewPageSubscriber(pages, p.DepIndex())
		sub.KeyPrefix = dpc.PageKeyPrefix
		if reg != nil {
			dropped := reg.Counter("dpc.pagecache_invalidations")
			sub.OnDrop = func(n int) { dropped.Add(int64(n)) }
		}
		subs = append(subs, sub)
	}
	if static := p.Static(); static != nil {
		sub := coherency.NewStaticSubscriber(static.Cache, p.DepIndex())
		sub.KeyPrefix = dpc.StaticKeyPrefix
		if reg != nil {
			dropped := reg.Counter("dpc.static_invalidations")
			sub.OnDrop = func(n int) { dropped.Add(int64(n)) }
		}
		subs = append(subs, sub)
	}
	if plans := p.Plans(); plans != nil {
		// The plan tier ignores fragment events and purges (plans are
		// content-hash keyed and hold no fragment bytes); it subscribes for
		// "plan"-scoped flushes and gap recovery.
		subs = append(subs, coherency.NewPlanSubscriber(plans.Store()))
	}
	return subs
}

// subscribeTiers attaches every cache tier of one proxy to the hub.
func (s *System) subscribeTiers(p *dpc.Proxy) {
	for _, sub := range ProxySubscribers(p, s.Registry) {
		s.Hub.Subscribe(sub)
	}
}

// Edge is an additional forward-deployed DPC created by StartEdge.
type Edge struct {
	// Name identifies the edge (for routers).
	Name string
	// Proxy is the edge's Dynamic Proxy Cache.
	Proxy *dpc.Proxy
	// URL is the edge's client-facing address.
	URL string

	srv   *http.Server
	store io.Closer // non-nil only for disk-backed stores
}

// Close shuts this one edge down — server, proxy background work, and
// (for a tiered store) the heap file, which a later StartEdge of the
// same name reopens warm. The rest of the system keeps running.
// Idempotent; System.Close also closes any edges still up.
func (e Edge) Close() error {
	var first error
	if e.srv != nil {
		e.srv.SetKeepAlivesEnabled(false)
		if err := e.srv.Close(); err != nil {
			first = err
		}
	}
	if e.Proxy != nil {
		_ = e.Proxy.Close()
	}
	if e.store != nil {
		if err := e.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NewSystem builds (but does not start) a system. Register scripts, then
// call Start.
func NewSystem(cfg Config, mode Mode) (*System, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 4096
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("core: negative capacity")
	}
	// Fail fast on a bad store selection instead of at Start.
	if err := cfg.storeConfig("front").Validate(); err != nil {
		return nil, err
	}
	if cfg.Codec == nil {
		cfg.Codec = tmpl.Binary{}
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	repo := repository.New(cfg.Latency)
	var mon *bem.Monitor
	if mode == ModeCached {
		var err error
		mon, err = bem.New(bem.Config{
			Capacity:       cfg.Capacity,
			ForcedMissProb: cfg.ForcedMissProb,
			Seed:           cfg.Seed,
			Registry:       cfg.Registry,
		})
		if err != nil {
			return nil, err
		}
		mon.BindRepo(repo)
	}
	var faults *origin.FaultInjector
	if cfg.OriginFaults != nil {
		faults = origin.NewFaultInjector(*cfg.OriginFaults)
	}
	org, err := origin.New(origin.Config{
		Repo:             repo,
		Monitor:          mon,
		Codec:            cfg.Codec,
		ExtraHeaderBytes: cfg.ExtraHeaderBytes,
		Registry:         cfg.Registry,
		Faults:           faults,
	})
	if err != nil {
		return nil, err
	}
	var tracer *trace.Tracer
	if cfg.Trace {
		tracer = dpc.NewTracer(cfg.Registry, cfg.TraceSampleEvery, cfg.TraceSlow, cfg.TraceRing)
	}
	return &System{
		Mode:     mode,
		Repo:     repo,
		Monitor:  mon,
		Origin:   org,
		Meter:    netsim.NewMeter(0),
		Registry: cfg.Registry,
		Tracer:   tracer,
		cfg:      cfg,
	}, nil
}

// Register adds scripts to the origin; call before Start.
func (s *System) Register(scripts ...*script.Script) error {
	if s.started {
		return fmt.Errorf("core: register before Start")
	}
	for _, sc := range scripts {
		if err := s.Origin.Register(sc); err != nil {
			return err
		}
	}
	return nil
}

// Start opens the metered origin listener and the proxy front end.
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("core: already started")
	}
	originLn, err := netsim.ListenLoopback(s.Meter)
	if err != nil {
		return err
	}
	if s.cfg.Firewall != nil {
		originLn = s.cfg.Firewall.Listener(originLn)
	}
	s.originLn = originLn
	s.originSrv = &http.Server{Handler: s.Origin}
	go func() { _ = s.originSrv.Serve(originLn) }()

	store, err := s.cfg.newStore("front")
	if err != nil {
		_ = originLn.Close()
		return err
	}
	if c, ok := store.(io.Closer); ok {
		s.frontStore = c
	}
	proxy, err := dpc.New(s.cfg.proxyConfig("http://"+originLn.Addr().String(), store, s.Registry, s.Tracer))
	if err != nil {
		if s.frontStore != nil {
			_ = s.frontStore.Close()
		}
		_ = originLn.Close()
		return err
	}
	s.Proxy = proxy
	if s.cfg.Fabric && s.Monitor != nil {
		s.Hub = coherency.NewHub(s.Monitor)
		s.subscribeTiers(proxy)
	}
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = proxy.Close()
		_ = originLn.Close()
		return err
	}
	s.proxyLn = proxyLn
	s.proxySrv = &http.Server{Handler: proxy}
	go func() { _ = s.proxySrv.Serve(proxyLn) }()
	s.started = true
	return nil
}

// FrontURL is what clients request against (the proxy).
func (s *System) FrontURL() string {
	if s.proxyLn == nil {
		return ""
	}
	return "http://" + s.proxyLn.Addr().String()
}

// OriginURL is the origin's direct address (bypassing the proxy).
func (s *System) OriginURL() string {
	if s.originLn == nil {
		return ""
	}
	return "http://" + s.originLn.Addr().String()
}

// StartEdge launches an additional DPC against this system's origin — a
// forward-proxy node in the Section 7 deployment. Edge proxies share the
// BEM's key space; pair them with routing.Router for request routing and
// coherency.Hub (subscribing each edge's Store) for invalidation
// propagation. The system must be started first.
func (s *System) StartEdge(name string) (Edge, error) {
	if !s.started {
		return Edge{}, fmt.Errorf("core: start the system before adding edges")
	}
	store, err := s.cfg.newStore("edge-" + name)
	if err != nil {
		return Edge{}, err
	}
	storeCloser, _ := store.(io.Closer)
	proxy, err := dpc.New(s.cfg.proxyConfig(s.OriginURL(), store, s.Registry, s.Tracer))
	if err != nil {
		if storeCloser != nil {
			_ = storeCloser.Close()
		}
		return Edge{}, err
	}
	if s.Hub != nil {
		s.subscribeTiers(proxy)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = proxy.Close()
		if storeCloser != nil {
			_ = storeCloser.Close()
		}
		return Edge{}, err
	}
	srv := &http.Server{Handler: proxy}
	s.edges = append(s.edges, srv)
	s.edgeProxies = append(s.edgeProxies, proxy)
	if storeCloser != nil {
		s.edgeStores = append(s.edgeStores, storeCloser)
	}
	go func() { _ = srv.Serve(ln) }()
	return Edge{Name: name, Proxy: proxy, URL: "http://" + ln.Addr().String(), srv: srv, store: storeCloser}, nil
}

// Close shuts both servers down, stopping each proxy's background work.
func (s *System) Close() error {
	var first error
	srvs := append([]*http.Server{s.proxySrv, s.originSrv}, s.edges...)
	for _, srv := range srvs {
		if srv != nil {
			srv.SetKeepAlivesEnabled(false)
			if err := srv.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, p := range append([]*dpc.Proxy{s.Proxy}, s.edgeProxies...) {
		if p != nil {
			_ = p.Close()
		}
	}
	// Close the heap files last, after their proxies have stopped; a
	// clean diskstore close writes back every dirty page so the next
	// open replays the full resident set. Close is idempotent, so edges
	// already bounced individually are fine.
	for _, c := range s.edgeStores {
		_ = c.Close()
	}
	if s.frontStore != nil {
		if err := s.frontStore.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Give in-flight handlers a beat to unwind before listeners vanish
	// from under metered accept loops.
	time.Sleep(time.Millisecond)
	return first
}
