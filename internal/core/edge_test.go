package core

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpcache/internal/coherency"
	"dpcache/internal/routing"
	"dpcache/internal/site"
)

// Section 7 deployment in miniature: two edge DPCs behind a router with a
// coherency hub. Asserts session affinity, coherent invalidation, and
// router failover.
func TestEdgeDeployment(t *testing.T) {
	sys, err := NewSystem(Config{Capacity: 256, Strict: true, Seed: 4}, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	portal, err := site.BuildPortal(site.PortalConfig{Users: 8, Modules: 6, ModulesPerPage: 3, ModuleBytes: 256}, sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(portal); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.StartEdge("too-early-check"); err != nil {
		t.Fatal(err) // started system: must succeed
	}

	hub := coherency.NewHub(sys.Monitor)
	router := routing.NewRouter(nil)
	for _, name := range []string{"east", "west"} {
		edge, err := sys.StartEdge(name)
		if err != nil {
			t.Fatal(err)
		}
		hub.Subscribe(coherency.NewStoreSubscriber(edge.Proxy.Store()))
		router.AddProxy(name, edge.URL)
	}
	front := httptest.NewServer(router)
	defer front.Close()

	fetch := func(user string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/page/portal", nil)
		req.Header.Set("X-User", user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return string(b), resp.Header.Get("X-Routed-To")
	}

	// Affinity: repeated requests by one user land on one edge.
	for u := 0; u < 8; u++ {
		user := fmt.Sprintf("u%d", u)
		_, home := fetch(user)
		for i := 0; i < 3; i++ {
			if _, again := fetch(user); again != home {
				t.Fatalf("user %s moved %s → %s", user, home, again)
			}
		}
	}

	// Coherency: update a module; no user on any edge may see stale
	// content afterward.
	site.UpdateModule(sys.Repo, 0, "fresh content everywhere")
	if hub.AckedThrough() != hub.Seq() {
		t.Fatalf("edges acked %d of %d events", hub.AckedThrough(), hub.Seq())
	}
	for u := 0; u < 8; u++ {
		page, _ := fetch(fmt.Sprintf("u%d", u))
		if strings.Contains(page, "content of module 0") {
			t.Fatalf("user u%d saw stale module content", u)
		}
	}

	// Failover: removing one edge, all users still get served.
	router.RemoveProxy("east")
	for u := 0; u < 8; u++ {
		page, routed := fetch(fmt.Sprintf("u%d", u))
		if routed != "west" {
			t.Fatalf("request routed to %q after removal", routed)
		}
		if len(page) == 0 {
			t.Fatal("empty page after failover")
		}
	}
}

func TestStartEdgeBeforeStartFails(t *testing.T) {
	sys, err := NewSystem(Config{Capacity: 8}, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartEdge("x"); err == nil {
		t.Fatal("StartEdge before Start accepted")
	}
}
