package core

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dpcache/internal/site"
	"dpcache/internal/trace"
)

// TestSystemSharedTracer asserts the cluster-level tracing contract: the
// front proxy and every edge share one tracer, so a client-supplied
// X-DPC-Trace id is adopted at whichever node it hits and both nodes'
// traces land in the one ring System.Tracer serves.
func TestSystemSharedTracer(t *testing.T) {
	sys, err := NewSystem(Config{
		Capacity:         256,
		Strict:           true,
		Seed:             11,
		Trace:            true,
		TraceSampleEvery: 1,
		TraceSlow:        -1,
	}, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer == nil {
		t.Fatal("Config.Trace set but System.Tracer is nil")
	}
	portal, err := site.BuildPortal(site.PortalConfig{Users: 2, Modules: 4, ModulesPerPage: 2, ModuleBytes: 128}, sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(portal); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	edge, err := sys.StartEdge("east")
	if err != nil {
		t.Fatal(err)
	}

	get := func(base, id string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, base+"/page/portal", nil)
		req.Header.Set("X-User", "u0")
		if id != "" {
			req.Header.Set(trace.Header, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d from %s", resp.StatusCode, base)
		}
		return resp
	}

	// An upstream-stamped id hits the front proxy; a fresh request hits
	// the edge. Both must be sampled (SampleEvery=1) into the same ring.
	const remoteID = "00000000deadbeef"
	front := get(sys.FrontURL(), remoteID)
	if got := front.Header.Get(trace.ResponseHeader); got != remoteID {
		t.Fatalf("front %s = %q, want adopted id %q", trace.ResponseHeader, got, remoteID)
	}
	edgeResp := get(edge.URL, "")
	edgeID := edgeResp.Header.Get(trace.ResponseHeader)
	if edgeID == "" || edgeID == remoteID {
		t.Fatalf("edge %s = %q, want a fresh id", trace.ResponseHeader, edgeID)
	}

	found := map[string]trace.TraceJSON{}
	for _, tr := range sys.Tracer.Traces(0) {
		found[tr.ID] = tr
	}
	remote, ok := found[remoteID]
	if !ok {
		t.Fatalf("front trace %s missing from shared ring (have %d traces)", remoteID, len(found))
	}
	if !remote.Remote {
		t.Error("adopted trace not marked remote")
	}
	edgeTr, ok := found[edgeID]
	if !ok {
		t.Fatalf("edge trace %s missing from shared ring", edgeID)
	}
	if edgeTr.Remote {
		t.Error("edge-originated trace wrongly marked remote")
	}
	if !strings.HasPrefix(edgeTr.Root.Name, "GET ") {
		t.Errorf("root span name %q, want GET ...", edgeTr.Root.Name)
	}

	// Shared counters: both samples aggregate on the one registry.
	if n := sys.Registry.Snapshot()["dpc.trace.sampled"]; n < 2 {
		t.Errorf("dpc.trace.sampled = %d, want >= 2", n)
	}
}

// TestSystemTraceDisabledByDefault keeps tracing strictly opt-in at the
// system layer.
func TestSystemTraceDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(Config{Capacity: 8}, ModeNoCache)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tracer != nil {
		t.Fatal("tracer created without Config.Trace")
	}
}
