package core

import (
	"strings"
	"testing"

	"dpcache/internal/fragstore"
)

// TestStoreBackendSelection runs the full cached pipeline (origin → BEM →
// DPC) against every selectable store backend and checks that assembled
// pages are identical across them: the backend is an implementation
// detail of the fragment memory, never of the content.
func TestStoreBackendSelection(t *testing.T) {
	configs := map[string]Config{
		"slot-default": {Capacity: 256, Strict: true, Seed: 1},
		"slot":         {Capacity: 256, Strict: true, Seed: 1, StoreBackend: fragstore.BackendSlot},
		"sharded":      {Capacity: 256, Strict: true, Seed: 1, StoreBackend: fragstore.BackendSharded, StoreShards: 8},
		"sharded-lru": {Capacity: 256, Strict: true, Seed: 1, StoreBackend: fragstore.BackendSharded,
			StoreByteBudget: 1 << 20, StoreEviction: "lru"},
		"sharded-gdsf": {Capacity: 256, Strict: true, Seed: 1, StoreBackend: fragstore.BackendSharded,
			StoreByteBudget: 1 << 20, StoreEviction: "gdsf"},
	}
	var reference string
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			sys := startSynthetic(t, ModeCached, cfg)
			// Twice: first fills the store via SETs, second assembles
			// from resident fragments.
			fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
			page := fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
			if reference == "" {
				reference = page
			} else if page != reference {
				t.Fatalf("backend %s assembled a different page", name)
			}
			st := sys.Proxy.Store().Stats()
			if st.Resident == 0 || st.Sets == 0 {
				t.Fatalf("store never populated: %+v", st)
			}
		})
	}
}

// TestStoreBackendSelectionRejectsBadConfig ensures misconfiguration
// fails at NewSystem, not at Start.
func TestStoreBackendSelectionRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{StoreBackend: "bogus"}, ModeCached); err == nil {
		t.Fatal("unknown store backend accepted")
	}
	if _, err := NewSystem(Config{StoreBackend: fragstore.BackendSharded,
		StoreByteBudget: 1024}, ModeCached); err == nil {
		t.Fatal("byte budget without eviction policy accepted")
	}
	_, err := NewSystem(Config{StoreBackend: fragstore.BackendSharded,
		StoreEviction: "fifo"}, ModeCached)
	if err == nil || !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("unknown eviction policy error = %v", err)
	}
}

// TestEdgeProxiesGetDistinctStores guards the per-proxy store invariant:
// edges must not share fragment memory with the reverse proxy (coherency
// relies on invalidating each edge independently).
func TestEdgeProxiesGetDistinctStores(t *testing.T) {
	sys := startSynthetic(t, ModeCached,
		Config{Capacity: 64, Strict: true, StoreBackend: fragstore.BackendSharded})
	edge, err := sys.StartEdge("edge-1")
	if err != nil {
		t.Fatal(err)
	}
	if edge.Proxy.Store() == sys.Proxy.Store() {
		t.Fatal("edge shares the reverse proxy's store")
	}
	_ = sys.Proxy.Store().Set(1, 1, []byte("main-only"))
	if _, ok := edge.Proxy.Store().Get(1, 1, false); ok {
		t.Fatal("edge store sees main proxy's fragments")
	}
}
