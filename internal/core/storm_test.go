package core

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"dpcache/internal/site"
)

// The storm test hammers a cached system with concurrent readers while a
// writer continuously updates fragment source rows, asserting that every
// served page is structurally intact: correct total size, every fragment
// present exactly once, and no fragment older than the version that was
// current when the *previous* page for that client completed (monotonic
// freshness per client under serialized client requests is not guaranteed
// by the paper's design, so we assert the weaker torn-page property plus
// global version floors).
func TestConcurrentStormIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test")
	}
	cfg := site.SyntheticConfig{Pages: 4, FragmentsPerPage: 4, FragmentBytes: 256, Cacheability: 1.0}
	sys, err := NewSystem(Config{Capacity: 64, Strict: true, Seed: 5}, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := site.BuildSynthetic(cfg, sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(sc); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	fragRe := regexp.MustCompile(`<!--frag (\d+) v(\d+)-->`)
	var minVersion atomic.Int64 // floor: versions the writer has fully published
	minVersion.Store(1)

	var stop atomic.Bool
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		v := int64(2)
		for !stop.Load() {
			for j := 0; j < cfg.Pages*cfg.FragmentsPerPage; j++ {
				site.TouchFragment(sys.Repo, j, fmt.Sprint(v))
			}
			minVersion.Store(v) // all fragments now at >= v
			v++
		}
	}()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				page := (g + i) % cfg.Pages
				floor := minVersion.Load()
				resp, err := client.Get(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), page))
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d err %v", resp.StatusCode, err)
					return
				}
				if len(body) != cfg.FragmentsPerPage*cfg.FragmentBytes {
					errs <- fmt.Errorf("torn page: %d bytes, want %d", len(body), cfg.FragmentsPerPage*cfg.FragmentBytes)
					return
				}
				matches := fragRe.FindAllStringSubmatch(string(body), -1)
				if len(matches) != cfg.FragmentsPerPage {
					errs <- fmt.Errorf("page %d has %d fragment markers, want %d", page, len(matches), cfg.FragmentsPerPage)
					return
				}
				for k, m := range matches {
					wantFrag := page*cfg.FragmentsPerPage + k
					gotFrag, _ := strconv.Atoi(m[1])
					if gotFrag != wantFrag {
						errs <- fmt.Errorf("page %d slot %d shows fragment %d, want %d (cross-fragment mixup)", page, k, gotFrag, wantFrag)
						return
					}
					v, _ := strconv.ParseInt(m[2], 10, 64)
					if v < floor {
						errs <- fmt.Errorf("fragment %d served version %d below published floor %d", gotFrag, v, floor)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	writerWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
