package core

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpcache/internal/site"
)

// newFabricSystem stands up a cached system with the invalidation fabric
// and a deliberately long page-TTL: freshness must come from
// invalidation, not time.
func newFabricSystem(t testing.TB, mutate func(*Config)) (*System, site.SyntheticConfig) {
	t.Helper()
	siteCfg := site.DefaultSynthetic()
	cfg := Config{
		Capacity:     2 * siteCfg.Pages * siteCfg.FragmentsPerPage,
		Strict:       true,
		Seed:         7,
		PageCache:    true,
		PageCacheTTL: time.Minute,
		Fabric:       true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(cfg, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := site.BuildSynthetic(siteCfg, sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(sc); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys, siteCfg
}

func fabricGet(t testing.TB, url, inm string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// The PR's acceptance shape, end to end: invalidating a fragment through
// the BEM (a repository write) drops every page-tier entry built from it
// before the next request is served — no TTL wait — while pages built
// from other fragments survive, and an anonymous revalidation of a
// surviving page is answered 304 with zero body bytes.
func TestFabricInvalidatesPageTierEndToEnd(t *testing.T) {
	sys, _ := newFabricSystem(t, nil)
	page0 := sys.FrontURL() + "/page/synth?page=0"
	page1 := sys.FrontURL() + "/page/synth?page=1"

	// Warm both pages into the page tier (second GET is a PAGE hit).
	fabricGet(t, page0, "")
	resp0, body0 := fabricGet(t, page0, "")
	if resp0.Header.Get("X-Cache") != "PAGE" {
		t.Fatalf("page 0 revisit X-Cache = %q, want PAGE", resp0.Header.Get("X-Cache"))
	}
	if !strings.Contains(body0, "<!--frag 0 v1-->") {
		t.Fatalf("page 0 body missing fragment 0 v1: %q", body0[:80])
	}
	fabricGet(t, page1, "")
	resp1, _ := fabricGet(t, page1, "")
	etag1 := resp1.Header.Get("ETag")
	if resp1.Header.Get("X-Cache") != "PAGE" || etag1 == "" {
		t.Fatalf("page 1 revisit: X-Cache=%q ETag=%q", resp1.Header.Get("X-Cache"), etag1)
	}

	// Invalidate fragment 0 (page 0's first cacheable fragment) through
	// the BEM's data-dependency path: a repository write. The fabric
	// must drop page 0's tier entry synchronously.
	site.TouchFragment(sys.Repo, 0, "2")
	if acked, seq := sys.Hub.AckedThrough(), sys.Hub.Seq(); seq == 0 || acked != seq {
		t.Fatalf("fabric acked %d of %d events", acked, seq)
	}

	// The very next request must be fresh — served via assembly, not the
	// page tier, with the new fragment version. No TTL has expired.
	respFresh, bodyFresh := fabricGet(t, page0, "")
	if respFresh.Header.Get("X-Cache") == "PAGE" {
		t.Fatal("stale page-tier entry served after its fragment was invalidated")
	}
	if !strings.Contains(bodyFresh, "<!--frag 0 v2-->") {
		t.Fatalf("post-invalidation body still stale: %q", bodyFresh[:80])
	}
	if got := sys.Registry.Counter("dpc.pagecache_invalidations").Value(); got == 0 {
		t.Fatal("dpc.pagecache_invalidations did not move")
	}

	// Page 1 shares no fragment with the invalidation: it must survive in
	// the tier, and a conditional revalidation costs zero body bytes.
	resp304, body304 := fabricGet(t, page1, etag1)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("surviving page revalidation status = %d, want 304", resp304.StatusCode)
	}
	if len(body304) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body304))
	}
	if got := sys.Registry.Counter("dpc.pagecache_304s").Value(); got != 1 {
		t.Fatalf("dpc.pagecache_304s = %d, want 1", got)
	}
}

// A hub purge drops every page-tier variant of a URI on every subscribed
// proxy, without touching other URIs.
func TestFabricPurgeDropsURI(t *testing.T) {
	sys, _ := newFabricSystem(t, nil)
	page0 := sys.FrontURL() + "/page/synth?page=0"
	page1 := sys.FrontURL() + "/page/synth?page=1"
	fabricGet(t, page0, "")
	fabricGet(t, page1, "")
	if sys.Proxy.Pages().Len() != 2 {
		t.Fatalf("page tier holds %d entries, want 2", sys.Proxy.Pages().Len())
	}
	sys.Hub.BroadcastPurge("/page/synth?page=0")
	if sys.Proxy.Pages().Len() != 1 {
		t.Fatalf("purge left %d entries, want 1", sys.Proxy.Pages().Len())
	}
	if resp, _ := fabricGet(t, page1, ""); resp.Header.Get("X-Cache") != "PAGE" {
		t.Fatal("purge of page 0 disturbed page 1's entry")
	}
}

// Edge proxies started after the hub exists subscribe all their tiers
// automatically: a fragment invalidation reaches an edge's page tier too.
func TestFabricCoversEdgePageTiers(t *testing.T) {
	sys, _ := newFabricSystem(t, nil)
	edge, err := sys.StartEdge("east")
	if err != nil {
		t.Fatal(err)
	}
	page0 := edge.URL + "/page/synth?page=0"
	fabricGet(t, page0, "")
	if resp, _ := fabricGet(t, page0, ""); resp.Header.Get("X-Cache") != "PAGE" {
		t.Fatal("edge page tier did not warm")
	}
	site.TouchFragment(sys.Repo, 0, "9")
	resp, body := fabricGet(t, page0, "")
	if resp.Header.Get("X-Cache") == "PAGE" || !strings.Contains(body, "<!--frag 0 v9-->") {
		t.Fatalf("edge served stale after invalidation: X-Cache=%q", resp.Header.Get("X-Cache"))
	}
}

var fragVersionRe = regexp.MustCompile(`<!--frag 0 v(\d+)-->`)

// The invalidation-storm race: writers update a fragment's source row
// while readers hammer the page anonymously. A response that *began*
// after version N committed must never carry a version older than N —
// the page tier's fill/invalidate handshake (dependency edges +
// tombstones + epoch) is what closes the window where a stale capture is
// filed after the drop. Run with -race in CI.
func TestFabricInvalidationStormNeverServesDropped(t *testing.T) {
	sys, _ := newFabricSystem(t, func(c *Config) {
		c.Coalesce = false // single-flight serves point-in-time-of-leader pages; keep the oracle strict
	})
	page0 := sys.FrontURL() + "/page/synth?page=0"

	var committed atomic.Int64
	committed.Store(1)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		v := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v++
			site.TouchFragment(sys.Repo, 0, strconv.FormatInt(v, 10))
			// TouchFragment returns after the BEM invalidation and the
			// hub broadcast have fully applied (both are synchronous), so
			// every tier has dropped v-1 by the time this store lands.
			committed.Store(v)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	const readers = 6
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func() {
			for i := 0; ; i++ {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				floor := committed.Load()
				resp, err := http.Get(page0)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				m := fragVersionRe.FindSubmatch(body)
				if m == nil {
					errs <- fmt.Errorf("response carries no fragment-0 version: %q", body[:min(len(body), 80)])
					return
				}
				got, _ := strconv.ParseInt(string(m[1]), 10, 64)
				if got < floor {
					errs <- fmt.Errorf("served fragment 0 v%d after v%d had committed (X-Cache=%s)",
						got, floor, resp.Header.Get("X-Cache"))
					return
				}
			}
		}()
	}

	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	time.Sleep(dur)
	close(stop)
	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	<-writerDone
}

// BenchmarkInvalidationStorm measures the fabric under a combined
// assemble + invalidate + page-hit load: each iteration invalidates the
// hot page's fragment and immediately re-fetches the page. CI runs it
// with -benchtime=1x as a smoke test.
func BenchmarkInvalidationStorm(b *testing.B) {
	sys, _ := newFabricSystem(b, nil)
	page0 := sys.FrontURL() + "/page/synth?page=0"
	fabricGet(b, page0, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.TouchFragment(sys.Repo, 0, strconv.Itoa(i+2))
		resp, err := http.Get(page0)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
