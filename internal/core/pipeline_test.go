package core

import (
	"sync"
	"testing"
	"time"
)

// The pipeline knobs must thread from SystemConfig through to the proxy:
// a streaming+coalescing system serves pages byte-identical to the
// buffered system's, cold and warm.
func TestStreamingSystemServesIdenticalPages(t *testing.T) {
	buffered := startSynthetic(t, ModeCached, Config{Capacity: 256, Strict: true, Seed: 1})
	streaming := startSynthetic(t, ModeCached, Config{
		Capacity: 256, Strict: true, Seed: 1,
		Stream: true, Coalesce: true,
	})
	for i := 0; i < 3; i++ { // cold (SETs), warm (GETs), warm again
		for page := 0; page < 4; page++ {
			url := "/page/synth?page=" + string(rune('0'+page))
			want := fetch(t, buffered.FrontURL()+url, "u1")
			got := fetch(t, streaming.FrontURL()+url, "u1")
			if want != got {
				t.Fatalf("round %d page %d: streaming page diverged from buffered\nbuffered:  %q\nstreaming: %q",
					i, page, want, got)
			}
		}
	}
	if streaming.Registry.Counter("dpc.streamed").Value() == 0 {
		t.Fatal("streaming system never streamed a page")
	}
}

// A concurrent burst of identical requests against a coalescing system
// must serve everyone the same intact page.
func TestCoalescingSystemSurvivesStorm(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{Capacity: 256, Seed: 1, Coalesce: true})
	want := fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
	var wg sync.WaitGroup
	pages := make([]string, 16)
	for i := range pages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pages[i] = fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
		}(i)
	}
	wg.Wait()
	for i, page := range pages {
		if page != want {
			t.Fatalf("storm response %d diverged: %q != %q", i, page, want)
		}
	}
}

// Each proxy's background store publisher must refresh dpc.store.* gauges
// and be stopped by System.Close.
func TestSystemPublishesStoreGauges(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{
		Capacity: 256, Seed: 1, PublishInterval: 5 * time.Millisecond,
	})
	fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1") // populate the store
	deadline := time.Now().Add(5 * time.Second)
	for sys.Registry.Gauge("dpc.store.resident").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dpc.store.resident never refreshed without a stats scrape")
		}
		time.Sleep(time.Millisecond)
	}
}
