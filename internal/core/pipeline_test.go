package core

import (
	"sync"
	"testing"
	"time"
)

// The pipeline knobs must thread from SystemConfig through to the proxy:
// a streaming+coalescing system serves pages byte-identical to the
// buffered system's, cold and warm.
func TestStreamingSystemServesIdenticalPages(t *testing.T) {
	buffered := startSynthetic(t, ModeCached, Config{Capacity: 256, Strict: true, Seed: 1})
	streaming := startSynthetic(t, ModeCached, Config{
		Capacity: 256, Strict: true, Seed: 1,
		Stream: true, Coalesce: true,
	})
	for i := 0; i < 3; i++ { // cold (SETs), warm (GETs), warm again
		for page := 0; page < 4; page++ {
			url := "/page/synth?page=" + string(rune('0'+page))
			want := fetch(t, buffered.FrontURL()+url, "u1")
			got := fetch(t, streaming.FrontURL()+url, "u1")
			if want != got {
				t.Fatalf("round %d page %d: streaming page diverged from buffered\nbuffered:  %q\nstreaming: %q",
					i, page, want, got)
			}
		}
	}
	if streaming.Registry.Counter("dpc.streamed").Value() == 0 {
		t.Fatal("streaming system never streamed a page")
	}
}

// SystemConfig.PageCache must thread through to the proxy: an anonymous
// revisit is served from the whole-page tier (one origin request), and
// identified traffic still takes the fragment path.
func TestSystemPageCacheServesAnonymousRevisits(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{
		Capacity: 256, Strict: true, Seed: 1,
		PageCache: true, PageCacheTTL: time.Minute,
	})
	want := fetch(t, sys.FrontURL()+"/page/synth?page=0", "")
	origin0 := sys.Registry.Counter("origin.requests").Value()
	for i := 0; i < 5; i++ {
		if got := fetch(t, sys.FrontURL()+"/page/synth?page=0", ""); got != want {
			t.Fatalf("revisit %d diverged from the first page", i)
		}
	}
	if d := sys.Registry.Counter("origin.requests").Value() - origin0; d != 0 {
		t.Fatalf("anonymous revisits cost %d origin requests, want 0", d)
	}
	if hits := sys.Registry.Counter("dpc.pagecache_hits").Value(); hits != 5 {
		t.Fatalf("dpc.pagecache_hits = %d, want 5", hits)
	}
	// Identified traffic bypasses the tier (and must still be correct).
	if got := fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1"); got != want {
		// The synthetic site's layout is user-independent, so the bodies
		// match; what matters is the path taken.
		t.Fatalf("identified fetch diverged: %q", got)
	}
	if b := sys.Registry.Counter("dpc.pagecache_bypass_identity").Value(); b != 1 {
		t.Fatalf("dpc.pagecache_bypass_identity = %d, want 1", b)
	}
}

// A concurrent burst of identical requests against a coalescing system
// must serve everyone the same intact page.
func TestCoalescingSystemSurvivesStorm(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{Capacity: 256, Seed: 1, Coalesce: true})
	want := fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
	var wg sync.WaitGroup
	pages := make([]string, 16)
	for i := range pages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pages[i] = fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1")
		}(i)
	}
	wg.Wait()
	for i, page := range pages {
		if page != want {
			t.Fatalf("storm response %d diverged: %q != %q", i, page, want)
		}
	}
}

// Each proxy's background store publisher must refresh dpc.store.* gauges
// and be stopped by System.Close.
func TestSystemPublishesStoreGauges(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{
		Capacity: 256, Seed: 1, PublishInterval: 5 * time.Millisecond,
	})
	fetch(t, sys.FrontURL()+"/page/synth?page=0", "u1") // populate the store
	deadline := time.Now().Add(5 * time.Second)
	for sys.Registry.Gauge("dpc.store.resident").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dpc.store.resident never refreshed without a stats scrape")
		}
		time.Sleep(time.Millisecond)
	}
}
