package core

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dpcache/internal/firewall"
	"dpcache/internal/site"
)

// startSynthetic builds and starts a system running the synthetic site.
func startSynthetic(t *testing.T, mode Mode, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg, mode)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := site.BuildSynthetic(site.DefaultSynthetic(), sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(sc); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func fetch(t *testing.T, url, user string) string {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if user != "" {
		req.Header.Set("X-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	return string(b)
}

func TestModeString(t *testing.T) {
	if ModeNoCache.String() != "no-cache" || ModeCached.String() != "cached" {
		t.Fatal("mode names changed")
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{}, ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Monitor == nil {
		t.Fatal("cached mode lacks monitor")
	}
	sysNC, err := NewSystem(Config{}, ModeNoCache)
	if err != nil {
		t.Fatal(err)
	}
	if sysNC.Monitor != nil {
		t.Fatal("no-cache mode has monitor")
	}
}

func TestNewSystemRejectsNegativeCapacity(t *testing.T) {
	if _, err := NewSystem(Config{Capacity: -1}, ModeCached); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestRegisterAfterStartFails(t *testing.T) {
	sys := startSynthetic(t, ModeNoCache, Config{})
	if err := sys.Register(nil); err == nil {
		t.Fatal("register after start accepted")
	}
}

func TestPagesIdenticalAcrossModes(t *testing.T) {
	nc := startSynthetic(t, ModeNoCache, Config{Seed: 1})
	ch := startSynthetic(t, ModeCached, Config{Seed: 1, Strict: true})
	for _, q := range []string{"0", "3", "9"} {
		url := "/page/synth?page=" + q
		a := fetch(t, nc.FrontURL()+url, "")
		b := fetch(t, ch.FrontURL()+url, "") // cold
		c := fetch(t, ch.FrontURL()+url, "") // warm
		if a != b || a != c {
			t.Fatalf("page %s differs across modes (lens %d/%d/%d)", q, len(a), len(b), len(c))
		}
	}
}

func TestCachedModeSavesOriginBandwidth(t *testing.T) {
	nc := startSynthetic(t, ModeNoCache, Config{Seed: 1})
	ch := startSynthetic(t, ModeCached, Config{Seed: 1})

	const reqs = 30
	for i := 0; i < reqs; i++ {
		fetch(t, nc.FrontURL()+"/page/synth?page=0", "")
		fetch(t, ch.FrontURL()+"/page/synth?page=0", "")
	}
	ncBytes := nc.Meter.BytesOut()
	chBytes := ch.Meter.BytesOut()
	if chBytes >= ncBytes {
		t.Fatalf("cached origin bytes %d not below no-cache %d", chBytes, ncBytes)
	}
	// With a hot cache, 60% cacheable fragments and 30 identical
	// requests, the ratio should sit well under 0.7.
	ratio := float64(chBytes) / float64(ncBytes)
	if ratio > 0.7 {
		t.Fatalf("B_C/B_NC = %.3f, want < 0.7", ratio)
	}
}

func TestMeterSeesTraffic(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{})
	fetch(t, sys.FrontURL()+"/page/synth?page=0", "")
	if sys.Meter.Bytes() == 0 || sys.Meter.Conns() == 0 {
		t.Fatal("origin link not metered")
	}
}

func TestForcedMissDrivesHitRatio(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{ForcedMissProb: 1.0, Seed: 3})
	for i := 0; i < 10; i++ {
		fetch(t, sys.FrontURL()+"/page/synth?page=0", "")
	}
	st := sys.Monitor.Stats()
	if st.Hits != 0 {
		t.Fatalf("forced-miss 1.0 still produced %d hits", st.Hits)
	}
}

func TestFirewallScansOriginLink(t *testing.T) {
	fw := firewall.New(nil)
	sys := startSynthetic(t, ModeCached, Config{Firewall: fw})
	fetch(t, sys.FrontURL()+"/page/synth?page=0", "")
	if fw.ScannedBytes() == 0 {
		t.Fatal("firewall saw no traffic")
	}
	if fw.ScannedBytes() < sys.Meter.Bytes() {
		t.Fatalf("firewall scanned %d < metered %d", fw.ScannedBytes(), sys.Meter.Bytes())
	}
}

func TestExtraHeaderBytesInflateResponses(t *testing.T) {
	small := startSynthetic(t, ModeNoCache, Config{})
	big := startSynthetic(t, ModeNoCache, Config{ExtraHeaderBytes: 300})
	fetch(t, small.FrontURL()+"/page/synth?page=0", "")
	fetch(t, big.FrontURL()+"/page/synth?page=0", "")
	if big.Meter.BytesOut() <= small.Meter.BytesOut()+250 {
		t.Fatalf("header padding missing: %d vs %d", big.Meter.BytesOut(), small.Meter.BytesOut())
	}
}

func TestOriginURLDirectAccessServesPlainPage(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{})
	body := fetch(t, sys.OriginURL()+"/page/synth?page=0", "")
	if !strings.Contains(body, "<!--frag 0") {
		t.Fatalf("direct origin page = %q…", body[:40])
	}
}

func TestDoubleStartFails(t *testing.T) {
	sys := startSynthetic(t, ModeNoCache, Config{})
	if err := sys.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestInvalidationFlowsThroughSystem(t *testing.T) {
	sys := startSynthetic(t, ModeCached, Config{Strict: true})
	url := sys.FrontURL() + "/page/synth?page=0"
	before := fetch(t, url, "")
	fetch(t, url, "") // warm
	site.TouchFragment(sys.Repo, 0, "42")
	after := fetch(t, url, "")
	if before == after {
		t.Fatal("update did not reach served pages")
	}
	if !strings.Contains(after, "v42") {
		t.Fatalf("fresh content missing: %q…", after[:60])
	}
}
