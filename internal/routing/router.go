package routing

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dpcache/internal/metrics"
)

// Router is the client-facing front door of a forward-proxy deployment:
// it owns the ring, health state, and failover policy, and forwards each
// request to the session-affine DPC.
type Router struct {
	ring *Ring
	mu   sync.RWMutex
	urls map[string]string // node name → base URL
	down map[string]time.Time

	// MaxFailover bounds the failover chain length (default 2).
	MaxFailover int
	// CoolDown is how long a failed node stays out of rotation.
	CoolDown time.Duration

	client *http.Client
	reg    *metrics.Registry
}

// NewRouter returns a router over an empty proxy set.
func NewRouter(reg *metrics.Registry) *Router {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Router{
		ring:        NewRing(0),
		urls:        make(map[string]string),
		down:        make(map[string]time.Time),
		MaxFailover: 2,
		CoolDown:    5 * time.Second,
		client:      &http.Client{Timeout: 10 * time.Second},
		reg:         reg,
	}
}

// AddProxy registers an edge DPC under a stable name.
func (rt *Router) AddProxy(name, baseURL string) {
	rt.mu.Lock()
	rt.urls[name] = baseURL
	rt.mu.Unlock()
	rt.ring.Add(name)
}

// RemoveProxy drops a proxy permanently.
func (rt *Router) RemoveProxy(name string) {
	rt.ring.Remove(name)
	rt.mu.Lock()
	delete(rt.urls, name)
	delete(rt.down, name)
	rt.mu.Unlock()
}

// Proxies returns registered proxy names.
func (rt *Router) Proxies() []string { return rt.ring.Nodes() }

func (rt *Router) available(name string, now time.Time) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	until, bad := rt.down[name]
	return !bad || now.After(until)
}

func (rt *Router) markDown(name string, now time.Time) {
	rt.mu.Lock()
	rt.down[name] = now.Add(rt.CoolDown)
	rt.mu.Unlock()
	rt.reg.Counter("router.marked_down").Inc()
}

func (rt *Router) urlFor(name string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.urls[name]
}

// Pick returns the failover chain for a request.
func (rt *Router) Pick(userID, remoteAddr string) ([]string, error) {
	chain := rt.MaxFailover + 1
	return rt.ring.RouteN(SessionKey(userID, remoteAddr), chain)
}

// ServeHTTP forwards the request along the failover chain until a proxy
// answers, marking unreachable proxies down for the cool-down period.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	chain, err := rt.Pick(r.Header.Get("X-User"), r.RemoteAddr)
	if err != nil {
		http.Error(w, "router: no proxies registered", http.StatusServiceUnavailable)
		return
	}
	now := time.Now()
	var lastErr error
	for _, name := range chain {
		if !rt.available(name, now) {
			continue
		}
		resp, err := rt.forward(name, r)
		if err != nil {
			lastErr = err
			rt.markDown(name, now)
			rt.reg.Counter("router.failovers").Inc()
			continue
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("X-Routed-To", name)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		rt.reg.Counter("router.requests").Inc()
		return
	}
	rt.reg.Counter("router.exhausted").Inc()
	http.Error(w, fmt.Sprintf("router: all proxies failed (last: %v)", lastErr), http.StatusBadGateway)
}

func (rt *Router) forward(name string, r *http.Request) (*http.Response, error) {
	url := rt.urlFor(name)
	if url == "" {
		return nil, fmt.Errorf("routing: proxy %q has no URL", name)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"X-User", "Cookie", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.client.Do(req)
}
