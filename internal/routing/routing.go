// Package routing addresses the first open problem of the paper's Section
// 7: request routing across a set of forward-deployed Dynamic Proxy
// Caches.
//
// URL-based CDN routing does not apply — fragments are not addressable by
// URL — so requests are routed by *session affinity*: a stable key (user
// ID when present, else client address) is mapped onto the proxy set with
// a consistent-hash ring. Affinity maximizes fragment reuse at whichever
// proxy a user's session warms, and the ring keeps reassignment minimal
// when proxies join or fail ("requests routed to a given dynamic proxy
// cache must failover seamlessly and transparently to another proxy").
package routing

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over named nodes. It is safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	hashes   []uint64          // sorted virtual-node positions
	owner    map[uint64]string // position → node
	nodes    map[string]bool
}

// NewRing returns a ring placing each node at the given number of virtual
// positions (more replicas → smoother balance). replicas <= 0 selects 64.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		nodes:    make(map[string]bool),
	}
}

func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	// FNV of short, similar strings clusters on the ring; a splitmix64
	// avalanche finalizer spreads the positions uniformly.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a node; adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		pos := hash64(fmt.Sprintf("%s#%d", node, i))
		// Collisions across distinct vnodes are resolved by keeping
		// the lexically smaller owner, making Add order-independent.
		if cur, ok := r.owner[pos]; ok && cur <= node {
			continue
		}
		if _, ok := r.owner[pos]; !ok {
			r.hashes = append(r.hashes, pos)
		}
		r.owner[pos] = node
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a node (e.g. on failure detection).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.hashes[:0]
	for _, pos := range r.hashes {
		if r.owner[pos] == node {
			delete(r.owner, pos)
			continue
		}
		kept = append(kept, pos)
	}
	r.hashes = kept
}

// Nodes returns the current node set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the node count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Route maps a key to its owning node.
func (r *Ring) Route(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return "", fmt.Errorf("routing: ring is empty")
	}
	return r.owner[r.successor(hash64(key))], nil
}

// RouteN maps a key to its owner plus up to n−1 distinct failover nodes in
// ring order — the failover chain of Section 7.
func (r *Ring) RouteN(key string, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return nil, fmt.Errorf("routing: ring is empty")
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	var out []string
	seen := make(map[string]bool, n)
	idx := r.index(hash64(key))
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		node := r.owner[r.hashes[(idx+i)%len(r.hashes)]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out, nil
}

func (r *Ring) index(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

func (r *Ring) successor(h uint64) uint64 {
	return r.hashes[r.index(h)]
}

// SessionKey derives the routing key for a request: user identity when
// present (session affinity), falling back to the client address.
func SessionKey(userID, remoteAddr string) string {
	if userID != "" {
		return "user:" + userID
	}
	return "addr:" + remoteAddr
}
