package routing

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRouteEmptyRing(t *testing.T) {
	r := NewRing(0)
	if _, err := r.Route("k"); err == nil {
		t.Fatal("empty ring routed")
	}
	if _, err := r.RouteN("k", 2); err == nil {
		t.Fatal("empty ring routed N")
	}
}

func TestRouteDeterministic(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	first, err := r.Route("user:42")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, _ := r.Route("user:42")
		if got != first {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRemoveUnknownNoop(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Remove("zzz")
	if r.Len() != 1 {
		t.Fatal("remove of unknown node changed ring")
	}
}

func TestBalanceRoughlyEven(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		n, err := r.Route(fmt.Sprintf("user:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if math.Abs(share-0.25) > 0.10 {
			t.Fatalf("node %s owns %.3f of keys, want ~0.25", n, share)
		}
	}
}

// Property: removing one node only moves keys that were owned by it; all
// other keys keep their owner (the consistent-hashing contract).
func TestMinimalDisruptionOnRemove(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		r.Add(n)
	}
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Route(fmt.Sprintf("k%d", i))
	}
	r.Remove("c")
	for i := range before {
		after, _ := r.Route(fmt.Sprintf("k%d", i))
		if before[i] != "c" && after != before[i] {
			t.Fatalf("key k%d moved from %s to %s though %s was not removed", i, before[i], after, before[i])
		}
		if before[i] == "c" && after == "c" {
			t.Fatalf("key k%d still routed to removed node", i)
		}
	}
}

// Property: adding a node only steals keys for itself.
func TestMinimalDisruptionOnAdd(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Route(fmt.Sprintf("k%d", i))
	}
	r.Add("d")
	for i := range before {
		after, _ := r.Route(fmt.Sprintf("k%d", i))
		if after != before[i] && after != "d" {
			t.Fatalf("key k%d moved %s→%s on unrelated add", i, before[i], after)
		}
	}
}

func TestRouteNDistinctChain(t *testing.T) {
	r := NewRing(32)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	chain, err := r.RouteN("user:7", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	seen := map[string]bool{}
	for _, n := range chain {
		if seen[n] {
			t.Fatalf("duplicate in chain: %v", chain)
		}
		seen[n] = true
	}
	// First element must be the primary route.
	primary, _ := r.Route("user:7")
	if chain[0] != primary {
		t.Fatalf("chain[0]=%s, primary=%s", chain[0], primary)
	}
}

func TestRouteNClampsToNodeCount(t *testing.T) {
	r := NewRing(16)
	r.Add("only")
	chain, err := r.RouteN("k", 5)
	if err != nil || len(chain) != 1 {
		t.Fatalf("chain=%v err=%v", chain, err)
	}
}

func TestSessionKeyAffinity(t *testing.T) {
	if SessionKey("bob", "1.2.3.4:5") != "user:bob" {
		t.Fatal("user key wrong")
	}
	if SessionKey("", "1.2.3.4:5") != "addr:1.2.3.4:5" {
		t.Fatal("addr key wrong")
	}
}

func TestRouterForwardsWithAffinity(t *testing.T) {
	mk := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "served-by=%s user=%s", name, r.Header.Get("X-User"))
		}))
	}
	a, b := mk("a"), mk("b")
	defer a.Close()
	defer b.Close()

	rt := NewRouter(nil)
	rt.AddProxy("a", a.URL)
	rt.AddProxy("b", b.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	fetch := func(user string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/page/x", nil)
		req.Header.Set("X-User", user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 256)
		n, _ := resp.Body.Read(buf)
		return string(buf[:n]), resp.Header.Get("X-Routed-To")
	}
	// Same user always lands on the same proxy.
	_, first := fetch("bob")
	for i := 0; i < 10; i++ {
		if _, got := fetch("bob"); got != first {
			t.Fatalf("affinity broken: %s then %s", first, got)
		}
	}
}

func TestRouterFailover(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer healthy.Close()

	rt := NewRouter(nil)
	rt.AddProxy("dead", "http://127.0.0.1:1") // nothing listens there
	rt.AddProxy("live", healthy.URL)
	front := httptest.NewServer(rt)
	defer front.Close()

	// Whatever the primary is, every request must eventually succeed.
	for i := 0; i < 8; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/p?i=%d", front.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestRouterNoProxies(t *testing.T) {
	front := httptest.NewServer(NewRouter(nil))
	defer front.Close()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestRouterRemoveProxy(t *testing.T) {
	rt := NewRouter(nil)
	rt.AddProxy("a", "http://x")
	rt.RemoveProxy("a")
	if len(rt.Proxies()) != 0 {
		t.Fatal("proxy not removed")
	}
}
