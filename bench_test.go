// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's experiment index), plus ablations for the design decisions
// called out there. Run:
//
//	go test -bench=. -benchmem
package dpcache_test

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"

	"dpcache"
)

// benchOpts keeps the live-system figure benchmarks small enough to run in
// a default -benchtime budget while preserving the measured shapes.
func benchOpts() dpcache.ExperimentOptions {
	return dpcache.ExperimentOptions{Requests: 40, Warmup: 12, Concurrency: 4, Seed: 7, ExtraHeaderBytes: 300, ZipfAlpha: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := dpcache.RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable2Baseline evaluates the closed-form model at Table 2's
// settings.
func BenchmarkTable2Baseline(b *testing.B) {
	p := dpcache.BaselineParams()
	for i := 0; i < b.N; i++ {
		if p.Ratio() <= 0 {
			b.Fatal("ratio")
		}
	}
}

// One benchmark per paper artifact.
func BenchmarkFig2a(b *testing.B)     { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)     { benchExperiment(b, "fig2b") }
func BenchmarkFig3a(b *testing.B)     { benchExperiment(b, "fig3a") }
func BenchmarkResult1(b *testing.B)   { benchExperiment(b, "result1") }
func BenchmarkFig3b(b *testing.B)     { benchExperiment(b, "fig3b") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkCaseStudy(b *testing.B) { benchExperiment(b, "casestudy") }
func BenchmarkBaselines(b *testing.B) { benchExperiment(b, "baselines") }

// BenchmarkSaturation sweeps offered load past the fault-injected
// origin's capacity with admission control off and on (the overload
// experiment; see BENCH_saturation.json for the committed trajectory).
func BenchmarkSaturation(b *testing.B) { benchExperiment(b, "saturation") }

// startBenchSystem stands up a cached-mode system running the synthetic
// site and returns a warmed fetch function.
func startBenchSystem(b *testing.B, cfg dpcache.SystemConfig, codecName string) (fetch func(page int), close func()) {
	b.Helper()
	var codec dpcache.Codec
	switch codecName {
	case "text":
		codec = dpcache.TextCodec{}
	default:
		codec = dpcache.BinaryCodec{}
	}
	cfg.Codec = codec
	sys, err := dpcache.NewSystem(cfg, dpcache.ModeCached)
	if err != nil {
		b.Fatal(err)
	}
	sc, _, err := dpcache.BuildSynthetic(dpcache.DefaultSynthetic(), sys.Repo)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Register(sc); err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	fetch = func(page int) {
		resp, err := client.Get(fmt.Sprintf("%s/page/synth?page=%d", sys.FrontURL(), page))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	for p := 0; p < 10; p++ { // warm every slot
		fetch(p)
	}
	return fetch, func() { _ = sys.Close() }
}

// Ablation: strict (generation-checked) vs fast assembly on the full
// request path (DESIGN.md decision 4).
func BenchmarkStrictMode(b *testing.B) {
	for _, strict := range []bool{false, true} {
		name := "fast"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			fetch, done := startBenchSystem(b, dpcache.SystemConfig{Capacity: 256, Strict: strict, Seed: 1}, "binary")
			defer done()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fetch(i % 10)
			}
		})
	}
}

// Ablation: binary vs text template codec on the full request path
// (DESIGN.md decision 1).
func BenchmarkCodecEndToEnd(b *testing.B) {
	for _, codec := range []string{"binary", "text"} {
		b.Run(codec, func(b *testing.B) {
			fetch, done := startBenchSystem(b, dpcache.SystemConfig{Capacity: 256, Strict: true, Seed: 1}, codec)
			defer done()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fetch(i % 10)
			}
		})
	}
}

// BenchmarkWarmRequest measures the steady-state end-to-end request path
// (client → DPC → origin template → assembly) at the Table 2 shape.
func BenchmarkWarmRequest(b *testing.B) {
	fetch, done := startBenchSystem(b, dpcache.SystemConfig{Capacity: 256, Strict: true, Seed: 1}, "binary")
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch(0)
	}
}

// BenchmarkStoreBackendEndToEnd compares the fragment-store backends on
// the full concurrent request path (b.RunParallel drives the proxy from
// many goroutines, so the store's lock discipline is on the critical
// path). Raw store-level comparisons live in internal/fragstore.
func BenchmarkStoreBackendEndToEnd(b *testing.B) {
	cfgs := map[string]dpcache.SystemConfig{
		"slot": {Capacity: 256, Strict: true, Seed: 1,
			StoreBackend: dpcache.StoreBackendSlot},
		"sharded": {Capacity: 256, Strict: true, Seed: 1,
			StoreBackend: dpcache.StoreBackendSharded},
		"sharded-gdsf": {Capacity: 256, Strict: true, Seed: 1,
			StoreBackend:    dpcache.StoreBackendSharded,
			StoreByteBudget: 64 << 20, StoreEviction: "gdsf"},
	}
	for _, name := range []string{"slot", "sharded", "sharded-gdsf"} {
		b.Run(name, func(b *testing.B) {
			fetch, done := startBenchSystem(b, cfgs[name], "binary")
			defer done()
			var page atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					fetch(int(page.Add(1) % 10))
				}
			})
		})
	}
}

// BenchmarkAssembleStreaming compares buffered vs streaming assembly on
// the full request path: with -stream the proxy writes pages as templates
// decode (no full-page buffer), so per-request allocations stop scaling
// with page size. The raw assembler-level comparison lives in
// internal/dpc (BenchmarkAssembleStreamingVsBuffered).
func BenchmarkAssembleStreaming(b *testing.B) {
	for _, stream := range []bool{false, true} {
		name := "buffered"
		if stream {
			name = "streaming"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dpcache.SystemConfig{Capacity: 256, Strict: true, Seed: 1, Stream: stream}
			fetch, done := startBenchSystem(b, cfg, "binary")
			defer done()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fetch(i % 10)
			}
		})
	}
}

// BenchmarkCoalescedStorm drives concurrent identical requests with
// single-flight coalescing on vs off; with -coalesce the origin sees one
// fetch per storm instead of one per client.
func BenchmarkCoalescedStorm(b *testing.B) {
	for _, coalesce := range []bool{false, true} {
		name := "fanout"
		if coalesce {
			name = "coalesced"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dpcache.SystemConfig{Capacity: 256, Strict: true, Seed: 1, Coalesce: coalesce}
			fetch, done := startBenchSystem(b, cfg, "binary")
			defer done()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					fetch(0) // every goroutine hammers the same page
				}
			})
		})
	}
}
