package dpcache_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dpcache"
)

// The facade must support the full documented quick-start flow.
func TestFacadeQuickStart(t *testing.T) {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 64, Strict: true}, dpcache.ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	page := dpcache.NewScript("hello", func(ctx *dpcache.Context) []dpcache.Block {
		return []dpcache.Block{
			dpcache.Static("head", "<html>"),
			dpcache.Tagged("body", time.Minute, nil, func(c *dpcache.Context, w io.Writer) error {
				_, err := io.WriteString(w, "cached body")
				return err
			}),
			dpcache.Static("tail", "</html>"),
		}
	})
	if err := sys.Register(page); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(sys.FrontURL() + "/page/hello")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "<html>cached body</html>" {
			t.Fatalf("page = %q", body)
		}
	}
	st := sys.Monitor.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeSitesRender(t *testing.T) {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{}, dpcache.ModeNoCache)
	if err != nil {
		t.Fatal(err)
	}
	catalog := dpcache.BuildBookstore(sys.Repo)
	quote := dpcache.BuildBrokerage(sys.Repo)
	portal, err := dpcache.BuildPortal(dpcache.DefaultPortal(), sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	synth, _, err := dpcache.BuildSynthetic(dpcache.DefaultSynthetic(), sys.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(catalog, quote, portal, synth); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	for _, path := range []string{
		"/page/catalog?categoryID=Fiction",
		"/page/quote?ticker=IBM",
		"/page/portal",
		"/page/synth?page=0",
	} {
		resp, err := http.Get(sys.FrontURL() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(b) == 0 {
			t.Fatalf("%s: status %d, %d bytes", path, resp.StatusCode, len(b))
		}
	}
}

func TestFacadeExperimentCatalogue(t *testing.T) {
	ids := dpcache.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("ids = %v", ids)
	}
	tab, err := dpcache.RunExperiment("table2", dpcache.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "hit ratio") {
		t.Fatalf("table2 = %s", tab.String())
	}
	if _, err := dpcache.RunExperiment("bogus", dpcache.ExperimentOptions{}); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestFacadeAnalytical(t *testing.T) {
	p := dpcache.BaselineParams()
	if p.HitRatio != 0.8 {
		t.Fatalf("baseline = %+v", p)
	}
	if p.SavingsPercent() <= 0 {
		t.Fatal("baseline savings not positive")
	}
}

func TestFacadeWorkloadHelpers(t *testing.T) {
	z, err := dpcache.NewZipf(5, 1)
	if err != nil || z.N() != 5 {
		t.Fatalf("zipf: %v", err)
	}
	u, err := dpcache.NewUserPool(3, 0.5)
	if err != nil || u.Size() != 3 {
		t.Fatalf("pool: %v", err)
	}
}

func TestFacadeRenderPage(t *testing.T) {
	sc := dpcache.NewScript("x", func(*dpcache.Context) []dpcache.Block {
		return []dpcache.Block{dpcache.Static("only", "static!")}
	})
	b, err := dpcache.RenderPage(sc, dpcache.NewContext(nil, "", nil))
	if err != nil || string(b) != "static!" {
		t.Fatalf("%q, %v", b, err)
	}
}

func TestFacadeRouterAndHub(t *testing.T) {
	r := dpcache.NewRouter()
	r.AddProxy("a", "http://127.0.0.1:1")
	if len(r.Proxies()) != 1 {
		t.Fatal("router add failed")
	}
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 8}, dpcache.ModeCached)
	if err != nil {
		t.Fatal(err)
	}
	hub := dpcache.NewCoherencyHub(sys.Monitor)
	ev := hub.Broadcast("f", 0, 1)
	if ev.Seq != 1 {
		t.Fatalf("seq = %d", ev.Seq)
	}
}

func ExampleNewScript() {
	sc := dpcache.NewScript("greeting", func(ctx *dpcache.Context) []dpcache.Block {
		return []dpcache.Block{
			dpcache.Static("head", "<h1>"),
			dpcache.Untagged("who", func(c *dpcache.Context, w io.Writer) error {
				_, err := fmt.Fprint(w, c.Param("name", "world"))
				return err
			}),
			dpcache.Static("tail", "</h1>"),
		}
	})
	page, _ := dpcache.RenderPage(sc, dpcache.NewContext(nil, "", map[string]string{"name": "SIGMOD"}))
	fmt.Println(string(page))
	// Output: <h1>SIGMOD</h1>
}
