// Bookstore: the paper's Section 4.3.2 catalog site, demonstrating the
// correctness property that breaks URL-keyed page caches (Section 3.2.1):
// Bob (registered) and Alice (anonymous) request the *same URL* and must
// receive different pages — Bob's greeting and recommendations must never
// leak into Alice's response — while the shared category fragment is still
// served from the proxy cache for both.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"dpcache"
)

func main() {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 256, Strict: true}, dpcache.ModeCached)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dpcache.BuildBookstore(sys.Repo)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fetch := func(user string) string {
		req, _ := http.NewRequest(http.MethodGet,
			sys.FrontURL()+"/page/catalog?categoryID=Fiction", nil)
		if user != "" {
			req.Header.Set("X-User", user)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	bob := fetch("bob")
	fmt.Println("--- Bob's page (same URL) ---")
	fmt.Println(excerpt(bob))
	if !strings.Contains(bob, "Hello, Bob!") {
		log.Fatal("Bob lost his greeting")
	}

	alice := fetch("") // anonymous, same URL
	fmt.Println("--- Alice's page (same URL) ---")
	fmt.Println(excerpt(alice))
	if strings.Contains(alice, "Hello,") || strings.Contains(alice, "Because you like") {
		log.Fatal("CORRECTNESS VIOLATION: Alice received personalized content")
	}
	fmt.Println("✓ same URL, different layouts, no personalization leak")

	// The shared category fragment is cached across both users.
	st := sys.Monitor.Stats()
	fmt.Printf("BEM after 2 requests: %d lookups, %d hits (category fragment reused)\n",
		st.Lookups, st.Hits)

	// A catalog update invalidates just the category fragment.
	sys.Repo.Put(dpcache.RepoKey{Table: "books", Row: "Fiction/0"},
		map[string]string{"title": "A Wizard of Earthsea", "category": "Fiction"})
	fresh := fetch("")
	if !strings.Contains(fresh, "A Wizard of Earthsea") {
		log.Fatal("stale catalog served after update")
	}
	fmt.Println("✓ catalog update propagated through dependency invalidation")
}

func excerpt(page string) string {
	if len(page) > 360 {
		return page[:360] + "…"
	}
	return page
}
