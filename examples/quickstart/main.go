// Quickstart: stand up a complete origin + BEM + DPC system in-process,
// serve a page with one cacheable fragment, and watch the origin↔proxy
// template shrink once the fragment is cached.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"dpcache"
)

func main() {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 64, Strict: true}, dpcache.ModeCached)
	if err != nil {
		log.Fatal(err)
	}

	// Seed some content the fragment will read (and depend on: updating
	// it invalidates the fragment automatically).
	sys.Repo.Put(dpcache.RepoKey{Table: "motd", Row: "today"},
		map[string]string{"text": "fragment caching with dynamic layouts"})

	page := dpcache.NewScript("hello", func(ctx *dpcache.Context) []dpcache.Block {
		return []dpcache.Block{
			dpcache.Static("head", "<html><body><h1>dpcache</h1>"),
			dpcache.Tagged("motd", time.Minute, nil,
				func(c *dpcache.Context, w io.Writer) error {
					_, err := fmt.Fprintf(w, "<p>Today: %s</p>", c.Field("motd", "today", "text", "…"))
					return err
				}),
			dpcache.Static("tail", "</body></html>"),
		}
	})
	if err := sys.Register(page); err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fetch := func() string {
		resp, err := http.Get(sys.FrontURL() + "/page/hello")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		return string(b)
	}

	before := sys.Meter.BytesOut()
	page1 := fetch()
	cold := sys.Meter.BytesOut() - before

	before = sys.Meter.BytesOut()
	page2 := fetch()
	warm := sys.Meter.BytesOut() - before

	fmt.Println("page:", page1)
	if page1 != page2 {
		log.Fatal("pages differ between cold and warm serve!")
	}
	fmt.Printf("origin bytes, cold request (SET carries content): %d\n", cold)
	fmt.Printf("origin bytes, warm request (GET tag only):        %d\n", warm)
	fmt.Printf("origin-link reduction: %.1fx\n", float64(cold)/float64(warm))

	// Update the source row: the dependency index invalidates the
	// fragment, and the next page is fresh.
	sys.Repo.Put(dpcache.RepoKey{Table: "motd", Row: "today"},
		map[string]string{"text": "fresh content after invalidation"})
	fmt.Println("after update:", fetch())

	st := sys.Monitor.Stats()
	fmt.Printf("BEM: %d lookups, %d hits, %d data invalidations (hit ratio %.2f)\n",
		st.Lookups, st.Hits, st.DataInvalidations, st.HitRatio())
}
