// Brokerage: the stock-quote page of the paper's Section 3.2.1. Three
// fragments with three lifetimes — price (seconds), headlines (half
// hour), historical research (monthly) — show why fragment-granularity
// invalidation beats page-level caching: a price tick regenerates ~100
// bytes, not the whole page.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"dpcache"
)

func main() {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 256, Strict: true}, dpcache.ModeCached)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dpcache.BuildBrokerage(sys.Repo)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fetch := func() (string, int64) {
		before := sys.Meter.BytesOut()
		resp, err := http.Get(sys.FrontURL() + "/page/quote?ticker=IBM")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), sys.Meter.BytesOut() - before
	}

	_, cold := fetch()
	fmt.Printf("cold request:  %5d origin bytes (all three fragments SET)\n", cold)

	_, warm := fetch()
	fmt.Printf("warm request:  %5d origin bytes (three GET tags)\n", warm)

	// The market moves: only the price fragment's source row changes.
	sys.Repo.Put(dpcache.RepoKey{Table: "quotes", Row: "IBM"},
		map[string]string{"px": "142.10", "t": "10:15:00"})

	page, tick := fetch()
	fmt.Printf("after tick:    %5d origin bytes (price re-SET; headlines+research still GETs)\n", tick)

	if tick >= cold {
		log.Fatal("price tick cost as much as a cold page — granular invalidation broken")
	}
	if tick <= warm {
		log.Fatal("price tick was free — invalidation did not happen")
	}
	fmt.Printf("page shows new price: %v\n", contains(page, "$142.10"))
	fmt.Printf("origin-byte economics: cold %d > tick %d > warm %d ✓\n", cold, tick, warm)

	st := sys.Monitor.Stats()
	fmt.Printf("BEM: %d data invalidations (just the price fragment)\n", st.DataInvalidations)
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
