// Edge: the paper's Section 7 forward-proxy deployment. Three edge DPCs
// front one origin; a consistent-hash router gives users session affinity
// (and failover), and a coherency hub propagates BEM invalidations to
// every edge so none keeps serving stale fragments.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"dpcache"
)

func main() {
	sys, err := dpcache.NewSystem(dpcache.SystemConfig{Capacity: 512, Strict: true}, dpcache.ModeCached)
	if err != nil {
		log.Fatal(err)
	}
	portal, err := dpcache.BuildPortal(dpcache.DefaultPortal(), sys.Repo)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(portal); err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Three forward-deployed proxies, one coherency hub.
	hub := dpcache.NewCoherencyHub(sys.Monitor)
	router := dpcache.NewRouter()
	for _, name := range []string{"edge-east", "edge-west", "edge-eu"} {
		edge, err := sys.StartEdge(name)
		if err != nil {
			log.Fatal(err)
		}
		hub.Subscribe(dpcache.NewStoreSubscriber(edge.Proxy))
		router.AddProxy(name, edge.URL)
		fmt.Printf("started %s at %s\n", name, edge.URL)
	}
	front := httptest.NewServer(router)
	defer front.Close()

	fetch := func(user string) (page, routedTo string) {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/page/portal", nil)
		req.Header.Set("X-User", user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return string(b), resp.Header.Get("X-Routed-To")
	}

	// Session affinity: each user sticks to one edge.
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	homes := map[string]string{}
	for _, u := range users {
		_, edge := fetch(u)
		homes[u] = edge
		for i := 0; i < 3; i++ {
			if _, again := fetch(u); again != edge {
				log.Fatalf("affinity broken for %s: %s then %s", u, edge, again)
			}
		}
	}
	fmt.Println("✓ session affinity:", homes)

	// Coherency: update a module that appears in many profiles; every
	// edge must serve fresh content immediately afterward.
	sys.Repo.Put(dpcache.RepoKey{Table: "modules", Row: "mod0"},
		map[string]string{"title": "Module 0", "body": "BREAKING: coherent update"})
	fmt.Printf("hub broadcast %d invalidation events, all edges acked through %d\n",
		hub.Seq(), hub.AckedThrough())

	stale := 0
	for _, u := range users {
		page, _ := fetch(u)
		if strings.Contains(page, "content of module 0") {
			stale++
		}
	}
	if stale > 0 {
		log.Fatalf("COHERENCY VIOLATION: %d users saw stale module content", stale)
	}
	fmt.Println("✓ no edge served stale content after invalidation broadcast")
}
