// Command loadgen drives Zipf-distributed load against a front end (dpcd
// or origind) and reports throughput, latency, and transfer volume — the
// WebLoad stand-in.
//
//	loadgen -url http://127.0.0.1:9090 -n 1000 -c 8 -path /page/synth -pages 10
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"dpcache/internal/workload"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9090", "front-end base URL")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	path := flag.String("path", "/page/synth", "page path (gets ?page=<rank> appended)")
	pages := flag.Int("pages", 10, "distinct pages")
	alpha := flag.Float64("alpha", 1.0, "Zipf exponent")
	users := flag.Int("users", 0, "registered-user pool size")
	regFrac := flag.Float64("regfrac", 0, "fraction of requests carrying a user")
	seed := flag.Int64("seed", 1, "workload seed")
	rate := flag.Float64("rate", 0, "open-loop Poisson arrival rate (req/s); 0 = closed loop")
	flag.Parse()

	z, err := workload.NewZipf(*pages, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := workload.NewUserPool(*users, *regFrac)
	if err != nil {
		log.Fatal(err)
	}
	d := &workload.Driver{
		BaseURL:     *url,
		Gen:         workload.PageGenerator(z, pool, *path),
		Concurrency: *c,
		Seed:        *seed,
	}
	var res workload.Result
	if *rate > 0 {
		p, perr := workload.NewPoisson(*rate)
		if perr != nil {
			log.Fatal(perr)
		}
		rng := rand.New(rand.NewSource(*seed))
		res, err = d.RunTrace(p.Trace(rng, *n))
	} else {
		res, err = d.Run(*n)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests:   %d (%d errors)\n", res.Requests, res.Errors)
	fmt.Printf("elapsed:    %v (%.0f req/s)\n", res.Elapsed.Round(1e6), res.Throughput())
	fmt.Printf("body bytes: %d (%.0f per response)\n", res.BodyBytes, float64(res.BodyBytes)/float64(res.Requests))
	fmt.Printf("latency:    mean %v  p50 %v  p99 %v  max %v\n",
		res.Latency.Mean(), res.Latency.Quantile(0.5), res.Latency.Quantile(0.99), res.Latency.Max())
}
