// Command dpclint runs dpcache's project-invariant analyzers over the
// module tree and exits non-zero on any finding. It is a CI gate:
//
//	go run ./cmd/dpclint ./...
//
// The analyzers and their invariants are documented in docs/LINTING.md;
// findings are suppressed line-by-line with
// //dpclint:ignore <analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dpcache/internal/lint"
)

func main() {
	list := flag.Bool("help-analyzers", false, "print the analyzers and their invariants, then exit")
	flag.Parse()

	analyzers := lint.ProjectAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if args := flag.Args(); len(args) > 1 || (len(args) == 1 && args[0] != "./...") {
		fmt.Fprintln(os.Stderr, "dpclint: the only supported package pattern is ./... (the whole module)")
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadTree()
	if err != nil {
		fatal(err)
	}

	diags := lint.RunPackages(pkgs, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dpclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dpclint: %d packages, %d analyzers, no findings\n", len(pkgs), len(analyzers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpclint:", err)
	os.Exit(1)
}
