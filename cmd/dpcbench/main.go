// Command dpcbench regenerates the paper's tables and figures.
//
//	dpcbench                    # run everything
//	dpcbench -run fig3b,fig5    # run selected artifacts
//	dpcbench -requests 1000     # bigger measurement windows
//	dpcbench -run pipeline,memory -json .   # also emit BENCH_*.json trajectories
//
// Analytical artifacts (table2, fig2a, fig2b, fig3a, result1) are
// instantaneous; experimental ones (fig3b, fig5, fig6, casestudy) stand up
// live origin+BEM+DPC systems per data point and take seconds each.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dpcache/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	requests := flag.Int("requests", 0, "measured requests per point (0 = default)")
	warmup := flag.Int("warmup", 0, "warmup requests per point (0 = default)")
	concurrency := flag.Int("concurrency", 0, "client workers (0 = default)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	jsonDir := flag.String("json", "", "also write each result as <dir>/BENCH_<id>.json trajectory files")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *requests > 0 {
		opts.Requests = *requests
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *concurrency > 0 {
		opts.Concurrency = *concurrency
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		start := time.Now()
		tab, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Print(tab.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *jsonDir != "" {
			path, err := experiments.WriteBench(*jsonDir, tab, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				exit = 1
				continue
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	os.Exit(exit)
}
