// Command origind runs the origin application server: content repository,
// dynamic scripts, and (in cached mode) the Back End Monitor. Pair it with
// dpcd as the reverse proxy and loadgen as the client.
//
//	origind -addr :8080 -sites bookstore,brokerage,portal,synth
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"dpcache/internal/bem"
	"dpcache/internal/origin"
	"dpcache/internal/repository"
	"dpcache/internal/site"
	"dpcache/internal/tmpl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	sites := flag.String("sites", "bookstore,brokerage,portal,synth", "sites to serve")
	mode := flag.String("mode", "cached", "cached (BEM templates) or plain (full pages)")
	capacity := flag.Int("capacity", 4096, "BEM fragment capacity")
	codecName := flag.String("codec", "binary", "template codec: binary or text")
	headerPad := flag.Int("headerpad", 0, "extra response-header padding bytes")
	faultLatency := flag.Duration("fault-latency", 0, "fault injection: base latency added to every page/static request")
	faultJitter := flag.Duration("fault-jitter", 0, "fault injection: uniform random extra latency in [0, jitter)")
	faultErrorRate := flag.Float64("fault-error-rate", 0, "fault injection: probability a request is answered 500")
	faultHangRate := flag.Float64("fault-hang-rate", 0, "fault injection: probability a request stalls for -fault-hang")
	faultHang := flag.Duration("fault-hang", 0, "fault injection: stall applied to hung requests (0 = 5s)")
	faultAbortRate := flag.Float64("fault-abort-rate", 0, "fault injection: probability a response is torn mid-body")
	faultConcurrency := flag.Int("fault-concurrency", 0, "fault injection: origin worker-pool size; excess requests queue (0 = unbounded)")
	faultSeed := flag.Int64("fault-seed", 0, "fault injection: RNG seed for reproducible draws (0 = 1)")
	flag.Parse()

	codec, err := tmpl.ByName(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	repo := repository.New(repository.LatencyModel{})
	var mon *bem.Monitor
	if *mode == "cached" {
		mon, err = bem.New(bem.Config{Capacity: *capacity})
		if err != nil {
			log.Fatal(err)
		}
		mon.BindRepo(repo)
	} else if *mode != "plain" {
		log.Fatalf("origind: unknown mode %q", *mode)
	}

	var faults *origin.FaultInjector
	if *faultLatency > 0 || *faultJitter > 0 || *faultErrorRate > 0 ||
		*faultHangRate > 0 || *faultAbortRate > 0 || *faultConcurrency > 0 {
		faults = origin.NewFaultInjector(origin.FaultConfig{
			Latency:       *faultLatency,
			Jitter:        *faultJitter,
			ErrorRate:     *faultErrorRate,
			HangRate:      *faultHangRate,
			Hang:          *faultHang,
			AbortRate:     *faultAbortRate,
			MaxConcurrent: *faultConcurrency,
			Seed:          *faultSeed,
		})
	}

	srv, err := origin.New(origin.Config{
		Repo:             repo,
		Monitor:          mon,
		Codec:            codec,
		ExtraHeaderBytes: *headerPad,
		Faults:           faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range strings.Split(*sites, ",") {
		switch strings.TrimSpace(name) {
		case "bookstore":
			err = srv.Register(site.BuildBookstore(repo))
		case "brokerage":
			err = srv.Register(site.BuildBrokerage(repo))
		case "portal":
			p, perr := site.BuildPortal(site.DefaultPortal(), repo)
			if perr != nil {
				log.Fatal(perr)
			}
			err = srv.Register(p)
		case "synth":
			sc, _, serr := site.BuildSynthetic(site.DefaultSynthetic(), repo)
			if serr != nil {
				log.Fatal(serr)
			}
			err = srv.Register(sc)
		case "":
		default:
			log.Fatalf("origind: unknown site %q", name)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("origind: serving %v in %s mode on %s\n", srv.Scripts(), *mode, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
