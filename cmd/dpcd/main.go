// Command dpcd runs the Dynamic Proxy Cache as a standalone reverse
// proxy in front of an origind instance.
//
//	dpcd -addr :9090 -origin http://127.0.0.1:8080
//
// The fragment store backend is selectable: the default "slot" backend is
// the paper's single-lock slot array; "-store sharded" enables the
// sharded store, optionally bounded by a byte budget with LRU or GDSF
// eviction. The budget (-store-budget) is one global ledger shared by all
// shards — eviction (-evict lru|gdsf) fires only when the store as a
// whole is over, so skewed key distributions do not evict early:
//
//	dpcd -store sharded -shards 32 -store-budget 67108864 -evict gdsf
//
// "-store tiered" mounts the disk-backed two-tier store: the RAM tier is
// a keyed store bounded by -store-budget, and instead of dropping its
// eviction victims it demotes them into a page-structured heap file
// (-disk-path, bounded by -disk-budget) behind a pinning buffer pool.
// Disk hits are promoted back to RAM, and a restart replays the heap
// file — discarding torn or checksum-bad pages — so a bounced proxy
// serves warm instead of cold. Disk-tier activity is published under
// dpc.store.disk_* (docs/METRICS.md):
//
//	dpcd -store tiered -store-budget 67108864 -evict lru \
//	     -disk-path /var/cache/dpcd.heap -disk-budget 1073741824
//
// The request path is a staged pipeline (admin, static-cache, pagecache,
// coalesce, origin-fetch, assemble, stale-fallback, respond) with
// per-stage latency histograms served from /_dpc/stats. Single-flight
// coalescing of identical in-flight origin fetches (-coalesce) and
// streaming assembly (-stream, with a strict-mode look-ahead spool sized
// by -spool) are on by default. Coalesced followers attach to the
// leader's in-progress broadcast and stream it live; -coalesce-buffer
// caps the per-flight replay buffer, past which late joiners fetch for
// themselves:
//
//	dpcd -coalesce=false -stream=false   # paper-faithful buffered path
//
// -pagecache mounts the whole-page cache tier: complete responses to
// anonymous-session GETs (no Cookie, Authorization, or X-User header) are
// cached for -pagecache-ttl — keyed by method, URI, and the forwarded
// variant headers, the same derivation as the coalesce key — and served
// with X-Cache: PAGE, so a burst on a hot page costs one origin fetch.
// Identity-bearing requests bypass the tier. Off by default, and like
// -coalesce the key excludes the per-client X-Forwarded-For, so origins
// that vary responses on client IP must not enable it:
//
//	dpcd -pagecache -pagecache-ttl 2s -pagecache-entries 4096
//
// Page-tier entries are stamped with a strong ETag; anonymous
// revalidations with a matching If-None-Match are answered 304 with no
// body. Freshness beyond the TTL comes from the invalidation fabric:
// -invalidate mounts /_dpc/invalidate, and a hub-side
// coherency.RemoteSubscriber POSTing the BEM's events there fans each
// fragment invalidation out to every tier — the slot store drops the
// fragment, and the page tier consults the in-proxy dependency index
// (bounded by -depindex-budget) to drop exactly the pages composed from
// it, falling back to a tier flush when the index evicted the edge. The
// endpoint is an unauthenticated write surface on the serving listener
// (a forged event or sequence gap forces conservative tier flushes), so
// it is off by default: enable it only where the listener is reachable
// solely by the hub side.
//
// -plancache (on by default) compiles each distinct template body into a
// cached operator program keyed by content hash: repeat assemblies skip
// the per-request template decode and resolve independent fragment GETs
// with a bounded parallel prefetch (-plan-parallelism). The streaming
// interpreter remains the fallback for oversized or corrupt templates;
// assembled pages are byte-identical on either path. Origin redeploys
// change the template bytes and miss naturally; plan-cache activity is
// served under dpc.plancache_* and the plancache section of /_dpc/stats.
//
// Store occupancy, byte, and eviction metrics are served from
// /_dpc/stats, refreshed in the background every -publish interval and,
// with -status, logged periodically. The same metric surface is served
// in Prometheus text exposition format from /_dpc/metrics.
//
// -trace enables request-scoped tracing (docs/OBSERVABILITY.md): each
// request carries a span tree — one span per pipeline stage, one per
// fragment resolved — annotated with tier hit/miss decisions, coalesce
// roles, and stale-bypass causes. Traces are sampled (every
// -trace-sample'th request, plus everything at least -trace-slow, which
// also emits a one-line slow-request log) into a -trace-ring-bounded
// ring served newest-first from /_dpc/trace (?min_ms= filters). Trace
// ids propagate across proxy hops via the X-DPC-Trace header, and
// sampled responses are stamped with X-DPC-Trace-Id:
//
//	dpcd -trace -trace-sample 16 -trace-slow 100ms
//
// -pprof mounts net/http/pprof under /_dpc/pprof/ for CPU, heap, and
// contention profiles (an unauthenticated diagnostic surface on the
// serving listener, so off by default).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpcache/internal/coherency"
	"dpcache/internal/core"
	"dpcache/internal/dpc"
	"dpcache/internal/fragstore"
	"dpcache/internal/tmpl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	originURL := flag.String("origin", "http://127.0.0.1:8080", "origin base URL")
	capacity := flag.Int("capacity", 4096, "fragment slot capacity (match origin's BEM)")
	codecName := flag.String("codec", "binary", "template codec: binary or text")
	strict := flag.Bool("strict", true, "generation-checked assembly with bypass recovery")
	backend := flag.String("store", fragstore.BackendSlot, "fragment store backend: slot, sharded, or tiered")
	shards := flag.Int("shards", 0, "sharded store: shard count, rounded to a power of two (0 = default)")
	budget := flag.Int64("store-budget", 0, "sharded store: resident fragment byte budget (0 = unbounded)")
	evict := flag.String("evict", "none", "sharded store: eviction policy when over budget: none, lru, or gdsf")
	diskPath := flag.String("disk-path", "", "tiered store: heap-file path, replayed on restart so the proxy serves warm (required with -store tiered)")
	diskBudget := flag.Int64("disk-budget", 0, "tiered store: disk-resident byte budget; over it the disk tier drops LRU victims (0 = unbounded)")
	diskPage := flag.Int("disk-page-bytes", 0, "tiered store: heap-file page size in bytes (0 = 32KiB default; changing it invalidates the file)")
	coalesce := flag.Bool("coalesce", true, "collapse concurrent identical origin fetches into one (single-flight)")
	coalesceBuf := flag.Int("coalesce-buffer", 0, "per-flight broadcast buffer cap in bytes before late joiners re-fetch (0 = 4MiB default)")
	stream := flag.Bool("stream", true, "stream assembled pages to clients instead of buffering whole pages")
	spool := flag.Int("spool", 0, "strict-mode streaming look-ahead spool in bytes (0 = 64KiB default)")
	pageCache := flag.Bool("pagecache", false, "cache whole pages for anonymous-session GETs (X-Cache: PAGE)")
	pageTTL := flag.Duration("pagecache-ttl", 0, "whole-page cache freshness window (0 = 2s default)")
	pageEntries := flag.Int("pagecache-entries", 0, "whole-page cache resident page bound (0 = 1024 default)")
	pageBudget := flag.Int64("pagecache-budget", 0, "whole-page cache resident byte bound (0 = unbounded)")
	planCache := flag.Bool("plancache", true, "compile templates into cached operator plans with parallel fragment prefetch (the interpreter remains the fallback)")
	planPar := flag.Int("plan-parallelism", 0, "plan executor prefetch worker fan-out (0 = 4 default; 1 = sequential)")
	invalidate := flag.Bool("invalidate", false, "mount the coherency invalidation endpoint at /_dpc/invalidate, fanning hub events to every cache tier (unauthenticated write endpoint on the serving listener — enable only where the hub side is the sole client)")
	depBudget := flag.Int64("depindex-budget", 0, "dependency-index edge byte budget for surgical page invalidation (0 = 1MiB default)")
	publishEvery := flag.Duration("publish", 10*time.Second, "background dpc.store.* gauge refresh interval (0 = disabled)")
	statusEvery := flag.Duration("status", 0, "log store status at this interval (0 = disabled)")
	traceOn := flag.Bool("trace", false, "request-scoped tracing: per-stage spans and decision events, captured to /_dpc/trace")
	traceSample := flag.Int("trace-sample", 0, "capture every Nth trace into the ring (0 = 64 default; slow requests always captured)")
	traceSlow := flag.Duration("trace-slow", 0, "always capture and log requests at least this slow (0 = 250ms default, negative = disabled)")
	traceRing := flag.Int("trace-ring", 0, "captured-trace ring size served by /_dpc/trace (0 = 256 default)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /_dpc/pprof/ (exposes runtime profiles on the serving listener)")
	admission := flag.Bool("admission", false, "admission control: under origin pressure serve stale from the cache tiers or shed with 503 + Retry-After instead of queueing")
	admitInFlight := flag.Int("admission-inflight", 0, "admission: max concurrent origin-bound requests (0 = unbounded)")
	admitKey := flag.Int("admission-key-inflight", 0, "admission: max concurrent origin-bound requests per coalesce key (0 = unbounded)")
	admitTenant := flag.Int("admission-tenant-inflight", 0, "admission: max concurrent origin-bound requests per X-User tenant (0 = unbounded)")
	admitQueue := flag.Int("admission-queue", 0, "admission: max followers parked on one coalesce flight before shedding (0 = unbounded)")
	admitShedLat := flag.Duration("admission-shed-latency", 0, "admission: origin latency EWMA past which stale serving is preferred (0 = signal off)")
	admitStale := flag.Duration("admission-stale-window", 0, "admission: how far past TTL a cache entry may be served under pressure (0 = 30s default)")
	admitNegTTL := flag.Duration("admission-neg-ttl", 0, "admission: negative-cache lifetime of origin failures (0 = 1s default)")
	admitRetry := flag.Duration("admission-retry-after", 0, "admission: Retry-After hint on shed 503s (0 = 1s default)")
	flag.Parse()

	codec, err := tmpl.ByName(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	store, err := fragstore.New(fragstore.Config{
		Backend:       *backend,
		Capacity:      *capacity,
		Shards:        *shards,
		ByteBudget:    *budget,
		Eviction:      *evict,
		DiskPath:      *diskPath,
		DiskBudget:    *diskBudget,
		DiskPageBytes: *diskPage,
	})
	if err != nil {
		log.Fatal(err)
	}
	publish := *publishEvery
	if publish <= 0 {
		publish = -1 // dpc: negative disables the background publisher
	}
	proxy, err := dpc.New(dpc.Config{
		OriginURL:           *originURL,
		Capacity:            *capacity,
		Store:               store,
		Codec:               codec,
		Strict:              *strict,
		Coalesce:            *coalesce,
		CoalesceBufferBytes: *coalesceBuf,
		Stream:              *stream,
		StreamSpoolBytes:    *spool,
		PageCache:           *pageCache,
		PageCacheTTL:        *pageTTL,
		PageCacheEntries:    *pageEntries,
		PageCacheBudget:     *pageBudget,
		PlanCache:           *planCache,
		PlanParallelism:     *planPar,
		DepIndexBudget:      *depBudget,
		PublishInterval:     publish,
		Trace:               *traceOn,
		TraceSampleEvery:    *traceSample,
		TraceSlow:           *traceSlow,
		TraceRingSize:       *traceRing,
		Pprof:               *pprofOn,
		Admission:           *admission,
		MaxOriginInFlight:   *admitInFlight,
		MaxKeyInFlight:      *admitKey,
		MaxTenantInFlight:   *admitTenant,
		MaxFlightWaiters:    *admitQueue,
		ShedLatency:         *admitShedLat,
		StaleWindow:         *admitStale,
		NegTTL:              *admitNegTTL,
		RetryAfter:          *admitRetry,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *invalidate {
		// Every cache tier subscribes to the invalidation fabric through
		// one endpoint: the hub side (a coherency.RemoteSubscriber
		// pointed at /_dpc/invalidate) POSTs events here, and fragment
		// drops fan out to the slot store plus — consulting the
		// dependency index — the page and static tiers.
		fan := coherency.Fanout(core.ProxySubscribers(proxy, proxy.Registry())...)
		proxy.HandleAdmin("/_dpc/invalidate", coherency.Handler(fan))
	}
	st := store.Stats()
	fmt.Printf("dpcd: proxying %s on %s (capacity %d, %s codec, strict=%v, coalesce=%v, stream=%v, pagecache=%v, plancache=%v)\n",
		*originURL, *addr, *capacity, codec.Name(), *strict, *coalesce, *stream, *pageCache, *planCache)
	fmt.Printf("dpcd: %s store, %d shard(s), byte budget %d, eviction %s; status at http://%s/_dpc/stats\n",
		st.Backend, st.Shards, st.ByteBudget, *evict, *addr)
	if dt, ok := store.(fragstore.DiskTiered); ok {
		ds := dt.TierStats().Disk
		fmt.Printf("dpcd: disk tier %s: %d entries (%d bytes) replayed warm, %d torn/bad pages discarded, byte budget %d\n",
			*diskPath, ds.RecoveredEntries, ds.Bytes, ds.ChecksumDiscards, ds.ByteBudget)
	}
	if *statusEvery > 0 {
		go func() {
			for range time.Tick(*statusEvery) {
				s := store.Stats()
				log.Printf("store: resident=%d/%d bytes=%d sets=%d hits=%d misses=%d drops=%d evictions=%d evicted_bytes=%d",
					s.Resident, s.Capacity, s.Bytes, s.Sets, s.Hits, s.Misses, s.Drops, s.Evictions, s.EvictedBytes)
			}
		}()
	}
	// SIGINT/SIGTERM shut down cleanly so a disk-backed store drains its
	// RAM tier to the heap file and the next start replays it warm; a
	// hard kill instead restarts with whatever had already demoted
	// (append-then-commit keeps the file itself consistent either way).
	srv := &http.Server{Addr: *addr, Handler: proxy}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("dpcd: %v: shutting down", sig)
		srv.SetKeepAlivesEnabled(false)
		_ = srv.Close()
		_ = proxy.Close()
		if c, ok := store.(io.Closer); ok {
			if err := c.Close(); err != nil {
				log.Fatalf("dpcd: store close: %v", err)
			}
		}
	}
}
