// Command dpcd runs the Dynamic Proxy Cache as a standalone reverse
// proxy in front of an origind instance.
//
//	dpcd -addr :9090 -origin http://127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"dpcache/internal/dpc"
	"dpcache/internal/tmpl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	originURL := flag.String("origin", "http://127.0.0.1:8080", "origin base URL")
	capacity := flag.Int("capacity", 4096, "fragment slot capacity (match origin's BEM)")
	codecName := flag.String("codec", "binary", "template codec: binary or text")
	strict := flag.Bool("strict", true, "generation-checked assembly with bypass recovery")
	flag.Parse()

	codec, err := tmpl.ByName(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := dpc.New(dpc.Config{
		OriginURL: *originURL,
		Capacity:  *capacity,
		Codec:     codec,
		Strict:    *strict,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dpcd: proxying %s on %s (capacity %d, %s codec, strict=%v)\n",
		*originURL, *addr, *capacity, codec.Name(), *strict)
	log.Fatal(http.ListenAndServe(*addr, proxy))
}
